"""The resilient artifact store.

Replaces the ad-hoc ``cache_base + ".npz"`` / bare-``open`` persistence
pattern that let a single truncated archive poison every benchmark run.
Guarantees:

* **Atomic writes** — payloads land via temp file + ``os.replace``;
  a crash mid-write leaves the previous entry (or nothing), never a
  torn archive.
* **Integrity manifests** — every payload carries a sidecar
  ``<name>.manifest.json`` recording its SHA-256, size, store version
  and the producing spec's hash.  Reads verify all of it.
* **Quarantine, not crash** — a payload that is unreadable, fails its
  hash, or has a missing/invalid manifest is renamed to ``*.corrupt``
  (manifest alongside), a structured warning is logged, and the read
  reports a cache **miss** so callers recompute and rewrite.
* **Staleness is a miss** — a valid entry whose spec hash does not
  match the request is left on disk (the next write overwrites it) but
  never returned.
* **Concurrency** — per-key file locks serialise writers; an in-memory
  LRU serves repeated reads without touching disk.
* **Observability** — hit/miss/corruption counters on every store.

Layout of a store rooted at ``R`` holding key ``k``::

    R/k                    payload (.npz, .json, anything bytes)
    R/k.manifest.json      integrity manifest
    R/k.lock               advisory writer lock
    R/k.corrupt            quarantined payload (after corruption)
"""

from __future__ import annotations

import io
import json
import os
import zipfile
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..errors import ArtifactError
from ..telemetry.logging import get_logger
from .atomic import atomic_write_bytes, sha256_bytes, sha256_file
from .locking import FileLock
from .lru import MemoryLRU
from .stats import StoreStats

__all__ = [
    "ArtifactStore",
    "StoreEntry",
    "STORE_VERSION",
    "MANIFEST_SUFFIX",
    "CORRUPT_SUFFIX",
]

logger = get_logger("repro.store")

STORE_VERSION = 1
MANIFEST_SUFFIX = ".manifest.json"
CORRUPT_SUFFIX = ".corrupt"
LOCK_SUFFIX = ".lock"

# Exceptions that mean "this payload is unreadable", not "caller bug".
_DECODE_ERRORS = (
    OSError,
    ValueError,
    KeyError,
    EOFError,
    zipfile.BadZipFile,
    json.JSONDecodeError,
)

_RESERVED_SUFFIXES = (MANIFEST_SUFFIX, CORRUPT_SUFFIX, LOCK_SUFFIX, ".tmp")


class StoreEntry:
    """One artifact as seen by :meth:`ArtifactStore.entries`."""

    def __init__(self, key: str, size: int, status: str,
                 spec_hash: Optional[str]):
        self.key = key
        self.size = size
        self.status = status  # "ok" | "no-manifest" | "bad-manifest" | "hash-mismatch" | "quarantined"
        self.spec_hash = spec_hash

    def __repr__(self) -> str:
        return (f"StoreEntry(key={self.key!r}, size={self.size}, "
                f"status={self.status!r})")


class ArtifactStore:
    """A directory of integrity-checked, atomically written artifacts.

    Parameters
    ----------
    root:
        Store directory (created lazily).
    max_memory_entries:
        In-memory LRU capacity (0 disables the memory layer).
    lock_timeout:
        Seconds to wait for a per-key writer lock.
    """

    def __init__(self, root: str, max_memory_entries: int = 64,
                 lock_timeout: float = 30.0):
        self.root = os.path.abspath(root)
        self.stats = StoreStats()
        self._memory = MemoryLRU(max_memory_entries)
        self._lock_timeout = lock_timeout

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> str:
        """Absolute payload path for ``key`` (validated)."""
        if not key or key.startswith(("/", ".")) or ".." in key.split("/"):
            raise ArtifactError(f"invalid artifact key {key!r}")
        if key.endswith(_RESERVED_SUFFIXES):
            raise ArtifactError(
                f"key {key!r} ends with a reserved store suffix"
            )
        return os.path.join(self.root, key)

    def _manifest_path(self, key: str) -> str:
        return self.path_for(key) + MANIFEST_SUFFIX

    def _lock(self, key: str) -> FileLock:
        return FileLock(self.path_for(key) + LOCK_SUFFIX,
                        timeout=self._lock_timeout)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def put_bytes(self, key: str, data: bytes,
                  spec_hash: Optional[str] = None) -> str:
        """Atomically persist ``data`` under ``key`` with a manifest.

        Returns the payload path.  The manifest is written *after* the
        payload; a crash between the two leaves a payload without a
        manifest, which readers treat as corrupt and quarantine — fail
        safe, never fail wrong.
        """
        path = self.path_for(key)
        manifest = {
            "store_version": STORE_VERSION,
            "key": key,
            "sha256": sha256_bytes(data),
            "size": len(data),
            "spec_hash": spec_hash,
        }
        with self._lock(key):
            atomic_write_bytes(path, data)
            atomic_write_bytes(
                self._manifest_path(key),
                (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode(),
            )
        self._memory.put((key, spec_hash), data)
        self.stats.writes += 1
        return path

    def put_npz(self, key: str, arrays: Dict[str, np.ndarray],
                spec_hash: Optional[str] = None) -> str:
        """Atomically persist an array mapping as ``.npz``."""
        buf = io.BytesIO()
        np.savez(buf, **arrays)
        return self.put_bytes(key, buf.getvalue(), spec_hash=spec_hash)

    def put_json(self, key: str, obj: Any,
                 spec_hash: Optional[str] = None) -> str:
        """Atomically persist a JSON document."""
        data = (json.dumps(obj, indent=2, sort_keys=True) + "\n").encode()
        return self.put_bytes(key, data, spec_hash=spec_hash)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def get_bytes(self, key: str,
                  spec_hash: Optional[str] = None) -> Optional[bytes]:
        """Verified payload bytes, or ``None`` on any kind of miss.

        Misses never raise: absent → miss; valid manifest but wrong
        spec hash/version → stale miss (entry left for overwrite);
        unreadable payload, hash mismatch, or missing/garbled manifest
        → quarantine + miss.
        """
        found, cached = self._memory.get((key, spec_hash))
        if found:
            self.stats.hits += 1
            self.stats.memory_hits += 1
            return cached

        path = self.path_for(key)
        if not os.path.exists(path):
            self.stats.misses += 1
            return None

        manifest = self._read_manifest(key)
        if manifest is None:
            self.quarantine(key, "missing or unreadable manifest")
            self.stats.misses += 1
            return None
        if manifest.get("store_version") != STORE_VERSION or (
            manifest.get("spec_hash") != spec_hash
        ):
            self.stats.stale += 1
            self.stats.misses += 1
            return None

        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError as exc:
            self.quarantine(key, f"unreadable payload: {exc}")
            self.stats.misses += 1
            return None
        if len(data) != manifest.get("size") or (
            sha256_bytes(data) != manifest.get("sha256")
        ):
            self.quarantine(key, "payload does not match manifest sha256/size")
            self.stats.misses += 1
            return None

        self._memory.put((key, spec_hash), data)
        self.stats.hits += 1
        return data

    def get_npz(self, key: str, spec_hash: Optional[str] = None
                ) -> Optional[Dict[str, np.ndarray]]:
        """Verified + decoded ``.npz`` entry, or ``None`` on a miss."""
        data = self.get_bytes(key, spec_hash=spec_hash)
        if data is None:
            return None
        try:
            with np.load(io.BytesIO(data), allow_pickle=False) as npz:
                return {k: npz[k] for k in npz.files}
        except _DECODE_ERRORS as exc:
            self._memory.invalidate((key, spec_hash))
            self.quarantine(key, f"npz decode failed: {exc}")
            # The bad bytes passed the hash check, so the entry was
            # *written* corrupt — retract the hit we just counted.
            self.stats.hits -= 1
            self.stats.misses += 1
            return None

    def get_json(self, key: str, spec_hash: Optional[str] = None
                 ) -> Optional[Any]:
        """Verified + decoded JSON entry, or ``None`` on a miss."""
        data = self.get_bytes(key, spec_hash=spec_hash)
        if data is None:
            return None
        try:
            return json.loads(data.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._memory.invalidate((key, spec_hash))
            self.quarantine(key, f"json decode failed: {exc}")
            self.stats.hits -= 1
            self.stats.misses += 1
            return None

    def fetch_json(self, key: str, compute: Callable[[], Any],
                   spec_hash: Optional[str] = None) -> Any:
        """Get-or-compute helper: read, else ``compute()`` and persist."""
        value = self.get_json(key, spec_hash=spec_hash)
        if value is not None:
            return value
        value = compute()
        self.put_json(key, value, spec_hash=spec_hash)
        return value

    # ------------------------------------------------------------------
    # corruption handling
    # ------------------------------------------------------------------
    def quarantine(self, key: str, reason: str) -> Optional[str]:
        """Move ``key``'s payload (and manifest) aside as ``*.corrupt``.

        Returns the quarantine path, or ``None`` if nothing existed.
        Never raises — quarantine is a best-effort cleanup on an
        already-failing read path.
        """
        path = self.path_for(key)
        # Drop every cached variant of this key, whatever spec hash it
        # was read under.
        self._memory.invalidate_where(lambda k: k[0] == key)
        dest = None
        for src, dst in (
            (path, path + CORRUPT_SUFFIX),
            (self._manifest_path(key),
             self._manifest_path(key) + CORRUPT_SUFFIX),
        ):
            if os.path.exists(src):
                try:
                    os.replace(src, dst)
                    if dest is None:
                        dest = dst
                except OSError:  # pragma: no cover - racing cleaner
                    pass
        if dest is not None:
            self.stats.corruptions += 1
            logger.warning(
                "quarantined corrupt artifact key=%s reason=%s moved_to=%s",
                key, reason, dest,
            )
        return dest

    # ------------------------------------------------------------------
    # inspection / maintenance
    # ------------------------------------------------------------------
    def drop_memory(self) -> None:
        """Empty the in-memory LRU (reads fall through to disk again).

        Useful when another process may have rewritten entries, and for
        tests that corrupt on-disk payloads behind the store's back.
        """
        self._memory.clear()

    def _read_manifest(self, key: str) -> Optional[dict]:
        try:
            with open(self._manifest_path(key)) as fh:
                manifest = json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        return manifest if isinstance(manifest, dict) else None

    def keys(self) -> List[str]:
        """All payload keys currently on disk (sorted)."""
        if not os.path.isdir(self.root):
            return []
        found = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            rel = os.path.relpath(dirpath, self.root)
            for name in filenames:
                if name.endswith(_RESERVED_SUFFIXES):
                    continue
                found.append(name if rel == "." else f"{rel}/{name}")
        return sorted(found)

    def entries(self) -> List[StoreEntry]:
        """Inspection view: every payload plus its integrity status."""
        out = []
        for key in self.keys():
            path = self.path_for(key)
            size = os.path.getsize(path)
            manifest = self._read_manifest(key)
            if manifest is None:
                status = ("no-manifest"
                          if not os.path.exists(self._manifest_path(key))
                          else "bad-manifest")
                spec = None
            else:
                spec = manifest.get("spec_hash")
                ok = (size == manifest.get("size")
                      and sha256_file(path) == manifest.get("sha256"))
                status = "ok" if ok else "hash-mismatch"
            out.append(StoreEntry(key, size, status, spec))
        if os.path.isdir(self.root):
            for dirpath, _dirnames, filenames in os.walk(self.root):
                rel = os.path.relpath(dirpath, self.root)
                for name in filenames:
                    if name.endswith(CORRUPT_SUFFIX) and not name.endswith(
                        MANIFEST_SUFFIX + CORRUPT_SUFFIX
                    ):
                        key = name if rel == "." else f"{rel}/{name}"
                        out.append(StoreEntry(
                            key, os.path.getsize(os.path.join(dirpath, name)),
                            "quarantined", None,
                        ))
        return out

    def verify(self) -> List[str]:
        """Scrub the store: quarantine every non-verifying payload.

        Returns the keys that were quarantined.
        """
        bad = []
        for entry in self.entries():
            if entry.status in ("no-manifest", "bad-manifest",
                                "hash-mismatch"):
                self.quarantine(entry.key, f"verify scrub: {entry.status}")
                bad.append(entry.key)
        return bad

    def clear(self, include_quarantine: bool = True) -> int:
        """Delete store contents; returns the number of files removed."""
        removed = 0
        if not os.path.isdir(self.root):
            return removed
        for dirpath, _dirnames, filenames in os.walk(self.root,
                                                     topdown=False):
            for name in filenames:
                if name.endswith(CORRUPT_SUFFIX) and not include_quarantine:
                    continue
                try:
                    os.unlink(os.path.join(dirpath, name))
                    removed += 1
                except OSError:  # pragma: no cover - racing cleaner
                    pass
        self._memory.clear()
        return removed

    def __repr__(self) -> str:
        return f"ArtifactStore(root={self.root!r}, {self.stats.describe()})"
