"""Atomic file I/O primitives for the artifact store.

Every write lands under its final name only after the bytes are fully
on disk: payloads go to a same-directory temp file which is fsynced and
then ``os.replace``-d into place.  A reader therefore either sees the
complete old file, the complete new file, or no file — never a
truncated archive, which is exactly the failure mode that poisoned the
seed model cache (``zipfile.BadZipFile`` on every run).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
from typing import Any, Dict

import numpy as np

__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_npz",
    "encode_npz",
    "sha256_bytes",
    "sha256_file",
]


def sha256_bytes(data: bytes) -> str:
    """Hex SHA-256 digest of a byte string."""
    return hashlib.sha256(data).hexdigest()


def sha256_file(path: str, chunk_size: int = 1 << 20) -> str:
    """Hex SHA-256 digest of a file, streamed in chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(chunk_size)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` via temp file + ``os.replace``.

    The temp file lives in the destination directory so the final
    rename stays on one filesystem (``os.replace`` is atomic only
    within a filesystem).
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(path: str, obj: Any) -> None:
    """Atomically serialise ``obj`` as pretty-printed JSON."""
    atomic_write_bytes(
        path, (json.dumps(obj, indent=2, sort_keys=True) + "\n").encode()
    )


def encode_npz(arrays: Dict[str, np.ndarray]) -> bytes:
    """Serialise an array mapping to ``.npz`` bytes in memory."""
    buf = io.BytesIO()
    np.savez(buf, **arrays)
    return buf.getvalue()


def atomic_write_npz(path: str, arrays: Dict[str, np.ndarray]) -> None:
    """Atomically persist an array mapping as an ``.npz`` archive."""
    atomic_write_bytes(path, encode_npz(arrays))
