"""Versioned cache keys: stable content hashes over artifact specs.

A cache entry is only trustworthy when the thing that produced it can
be identified.  :func:`spec_hash` canonicalises an arbitrary
JSON-serialisable spec (training recipe, architecture fingerprint,
dataset parameters, ...) and hashes it; the digest is stored in the
entry's manifest and checked on every read, so a stale or mismatched
entry surfaces as a cache *miss* instead of a silent wrong answer.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["spec_hash", "canonical_json"]


def canonical_json(spec: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace drift)."""
    return json.dumps(spec, sort_keys=True, separators=(",", ":"), default=_coerce)


def _coerce(value: Any) -> Any:
    # Tuples/sets arrive from dataclass specs; shapes arrive as tuples.
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, tuple):
        return list(value)
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    return repr(value)


def spec_hash(spec: Any, length: int = 16) -> str:
    """Hex digest (truncated SHA-256) of a canonicalised spec.

    ``length`` trades key readability against collision resistance;
    16 hex chars (64 bits) is plenty for a per-project cache.
    """
    digest = hashlib.sha256(canonical_json(spec).encode()).hexdigest()
    return digest[:length]
