"""Per-key file locking so concurrent processes don't torn-write.

POSIX ``fcntl.flock`` when available (Linux/macOS — the benchmark
fleet), a best-effort no-op elsewhere.  Locks are advisory: they
serialise *this library's* writers against each other, which is the
failure mode that matters for parallel benchmark sweeps sharing one
``.cache`` directory.
"""

from __future__ import annotations

import errno
import os
import time

from ..errors import ArtifactError
from ..telemetry.clock import monotonic

try:  # pragma: no cover - platform gate
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = ["FileLock"]

#: errno values that mean "somebody else holds the lock" — the only
#: condition worth polling on.  EACCES is what some NFS servers return
#: for a held lock in place of EWOULDBLOCK.
_CONTENTION_ERRNOS = frozenset({errno.EWOULDBLOCK, errno.EAGAIN, errno.EACCES})


class FileLock:
    """Advisory exclusive lock on ``<path>`` (a dedicated lock file).

    Usage::

        with FileLock(path + ".lock"):
            ...  # exclusive among cooperating processes
    """

    def __init__(self, path: str, timeout: float = 30.0, poll: float = 0.05):
        self.path = path
        self.timeout = timeout
        self.poll = poll
        self._fh = None

    def acquire(self) -> None:
        if fcntl is None:  # pragma: no cover - non-POSIX
            return
        os.makedirs(os.path.dirname(os.path.abspath(self.path)) or ".",
                    exist_ok=True)
        deadline = monotonic() + self.timeout
        self._fh = open(self.path, "a+b")
        while True:
            try:
                fcntl.flock(self._fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                return
            except OSError as exc:
                if exc.errno not in _CONTENTION_ERRNOS:
                    # A real I/O failure (EBADF, ENOLCK, a dying network
                    # fs), not contention: polling would spin for the
                    # full timeout and misreport it as a held lock.
                    self._fh.close()
                    self._fh = None
                    raise
                if monotonic() >= deadline:
                    self._fh.close()
                    self._fh = None
                    raise ArtifactError(
                        f"timed out after {self.timeout:.0f}s waiting for "
                        f"lock {self.path!r}"
                    )
                time.sleep(self.poll)

    def release(self) -> None:
        if self._fh is None:
            return
        try:
            if fcntl is not None:  # pragma: no branch
                fcntl.flock(self._fh.fileno(), fcntl.LOCK_UN)
        finally:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    @property
    def locked(self) -> bool:
        return self._fh is not None
