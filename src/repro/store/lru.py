"""A small in-memory LRU layer in front of the on-disk store.

Benchmark sweeps re-request the same trained model for every σ/trial
combination; serving those repeats from memory skips the read + hash
verification entirely.  Capacity is bounded by entry count — artifacts
here are model state dicts and JSON sidecars, tens to hundreds of KB.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional, Tuple

from ..errors import ConfigurationError

__all__ = ["MemoryLRU"]


class MemoryLRU:
    """Bounded mapping with least-recently-used eviction."""

    def __init__(self, max_entries: int = 64):
        if max_entries < 0:
            raise ConfigurationError(
                f"max_entries must be >= 0, got {max_entries!r}"
            )
        self.max_entries = max_entries
        self._data: "OrderedDict[Any, Any]" = OrderedDict()

    def get(self, key: Any) -> Tuple[bool, Optional[Any]]:
        """``(found, value)`` — a tuple so ``None`` values stay storable."""
        if key not in self._data:
            return False, None
        self._data.move_to_end(key)
        return True, self._data[key]

    def put(self, key: Any, value: Any) -> None:
        if self.max_entries == 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.max_entries:
            self._data.popitem(last=False)

    def invalidate(self, key: Any) -> None:
        self._data.pop(key, None)

    def invalidate_where(self, predicate) -> None:
        """Drop every entry whose key satisfies ``predicate``."""
        for key in [k for k in self._data if predicate(k)]:
            del self._data[key]

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data
