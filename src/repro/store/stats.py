"""Hit/miss/corruption counters for the artifact store.

Each :class:`~repro.store.artifacts.ArtifactStore` owns a
:class:`StoreStats`; benchmarks read them to report cache behaviour
alongside timings, and the corruption-recovery tests assert on them
(first run: misses + corruptions; second run: hits).

Since the telemetry subsystem landed, :class:`StoreStats` is a thin
attribute-style view over a private
:class:`~repro.telemetry.metrics.MetricsRegistry` — the counters the
store increments *are* registry counters.  The historical attribute
API (``stats.hits += 1``, including the retraction ``stats.hits -= 1``
when a hit's payload fails to decode) is preserved via properties, and
every delta applied through it is mirrored to the active telemetry
session (if any) under ``store.<name>`` so a run manifest captures
cache behaviour without the store knowing about sessions beyond one
forwarding call.
"""

from __future__ import annotations

from ..telemetry.metrics import MetricsRegistry

__all__ = ["StoreStats"]

_FIELDS = ("hits", "memory_hits", "misses", "stale", "corruptions", "writes")


def _make_property(name: str) -> property:
    def getter(self: "StoreStats") -> int:
        return self._registry.counter(name).value

    def setter(self: "StoreStats", value: int) -> None:
        counter = self._registry.counter(name)
        delta = value - counter.value
        counter.value = value
        if delta:
            self._forward(name, delta)

    return property(getter, setter)


class StoreStats:
    """Monotonic event counters for one store.

    Attributes
    ----------
    hits:
        Reads served (memory or disk).
    memory_hits:
        The subset of ``hits`` served from the in-memory LRU.
    misses:
        Reads that found nothing usable (absent, stale, or corrupt).
    stale:
        The subset of ``misses`` whose manifest was valid but whose
        spec/version hash did not match the request.
    corruptions:
        Artifacts quarantined (bad bytes, bad manifest, failed decode).
    writes:
        Artifacts persisted.
    """

    __slots__ = ("_registry",)

    def __init__(self) -> None:
        self._registry = MetricsRegistry()

    hits = _make_property("hits")
    memory_hits = _make_property("memory_hits")
    misses = _make_property("misses")
    stale = _make_property("stale")
    corruptions = _make_property("corruptions")
    writes = _make_property("writes")

    @staticmethod
    def _forward(name: str, delta: int) -> None:
        from .. import telemetry

        session = telemetry.active()
        if session is not None:
            session.count(f"store.{name}", delta)

    def reset(self) -> None:
        # Direct counter writes: a reset is bookkeeping, not store
        # activity, so nothing is forwarded to the telemetry session.
        for name in _FIELDS:
            self._registry.counter(name).value = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in _FIELDS}

    def describe(self) -> str:
        return (
            f"hits={self.hits} (memory={self.memory_hits}) "
            f"misses={self.misses} (stale={self.stale}) "
            f"corruptions={self.corruptions} writes={self.writes}"
        )

    def __repr__(self) -> str:
        return f"StoreStats({self.describe()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StoreStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()
