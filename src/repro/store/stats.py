"""Hit/miss/corruption counters for the artifact store.

Each :class:`~repro.store.artifacts.ArtifactStore` owns a
:class:`StoreStats`; benchmarks read them to report cache behaviour
alongside timings, and the corruption-recovery tests assert on them
(first run: misses + corruptions; second run: hits).
"""

from __future__ import annotations

import dataclasses

__all__ = ["StoreStats"]


@dataclasses.dataclass
class StoreStats:
    """Monotonic event counters for one store.

    Attributes
    ----------
    hits:
        Reads served (memory or disk).
    memory_hits:
        The subset of ``hits`` served from the in-memory LRU.
    misses:
        Reads that found nothing usable (absent, stale, or corrupt).
    stale:
        The subset of ``misses`` whose manifest was valid but whose
        spec/version hash did not match the request.
    corruptions:
        Artifacts quarantined (bad bytes, bad manifest, failed decode).
    writes:
        Artifacts persisted.
    """

    hits: int = 0
    memory_hits: int = 0
    misses: int = 0
    stale: int = 0
    corruptions: int = 0
    writes: int = 0

    def reset(self) -> None:
        for field in dataclasses.fields(self):
            setattr(self, field.name, field.default)

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def describe(self) -> str:
        return (
            f"hits={self.hits} (memory={self.memory_hits}) "
            f"misses={self.misses} (stale={self.stale}) "
            f"corruptions={self.corruptions} writes={self.writes}"
        )
