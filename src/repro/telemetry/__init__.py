"""Unified telemetry: metrics registry, span tracer, run manifests.

The instrumentation substrate for the whole library — every subsystem
that wants to report an MVM count, a chunk latency or a remap event
goes through this package instead of rolling its own counters or
calling :mod:`time` directly (enforced by lint rule ``TEL001``).

Design invariants:

* **Zero dependency** — stdlib + numpy only.
* **Zero overhead when disabled** — the module-level helpers reduce to
  one global load and a ``None`` check; ``span()`` returns a shared
  stateless null context manager.
* **Execution knob, not spec** — enabling telemetry never changes
  experiment bytes, fingerprints or RNG streams (histogram reservoirs
  use their own seeded generators).

``repro.telemetry.report`` (the ``repro report`` renderer) is *not*
re-exported here so importing the instrumentation layer stays light.
"""

from .clock import cpu, monotonic, perf, wall
from .context import (
    TraceContext,
    TraceIdAllocator,
    current_trace_id,
    trace_scope,
)
from .logging import StructuredLogger, get_logger
from .manifest import MANIFEST_VERSION, RunManifest
from .metrics import Counter, Gauge, MetricsRegistry, StreamingHistogram
from .session import (
    TelemetrySession,
    active,
    capture,
    count,
    disable,
    enable,
    observe,
    set_gauge,
    span,
)
from .tracer import Span, Tracer

__all__ = [
    "wall", "monotonic", "perf", "cpu",
    "Counter", "Gauge", "StreamingHistogram", "MetricsRegistry",
    "Span", "Tracer",
    "TraceContext", "TraceIdAllocator", "current_trace_id", "trace_scope",
    "StructuredLogger", "get_logger",
    "RunManifest", "MANIFEST_VERSION",
    "TelemetrySession", "enable", "disable", "active", "capture",
    "count", "observe", "set_gauge", "span",
]
