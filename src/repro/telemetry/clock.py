"""The one place the library reads wall/CPU clocks.

Every span timing, chunk-latency sample and manifest timestamp comes
from these four functions, so timings are comparable across subsystems
and the ``TEL001`` lint rule can enforce that no instrumentation grows
outside the telemetry layer (scattered ``time.perf_counter()`` calls
are exactly how ad-hoc, inconsistent metrics creep back in).

``benchmarks/`` is exempt: harness scripts time their *own* measurement
loops, and routing those through the subsystem under test would let the
instrumentation distort what it measures.
"""

from __future__ import annotations

import time

__all__ = ["wall", "monotonic", "perf", "cpu"]


def wall() -> float:
    """Epoch seconds (``time.time``) — manifest timestamps only."""
    return time.time()


def monotonic() -> float:
    """Monotonic seconds (``time.monotonic``) — deadlines, timeouts."""
    return time.monotonic()


def perf() -> float:
    """High-resolution monotonic seconds (``time.perf_counter``) —
    span durations and latency histograms."""
    return time.perf_counter()


def cpu() -> float:
    """Process CPU seconds (``time.process_time``) — span CPU cost."""
    return time.process_time()
