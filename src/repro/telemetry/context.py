"""Deterministic trace identity and ambient propagation.

A *trace* groups every span produced on behalf of one logical unit of
work — one HTTP request travelling through parse, queue, batch and
compute, or one fault campaign spanning scheduler cells and pool
workers.  Trace ids are minted by :class:`TraceIdAllocator`: a
monotonic counter combined with a seed derived from the session's
command and seed via CRC-32.  They are **never** drawn from an
experiment RNG stream (the same discipline as
:mod:`repro.telemetry.metrics` reservoirs), so tracing cannot perturb
seeded computation, and two runs of the same command mint the same id
sequence.

Propagation uses a :class:`contextvars.ContextVar`, so the ambient
trace follows asyncio tasks and threads started with a copied context.
Code that crosses an explicit boundary (the micro-batcher queue, a
process pool) carries the ``trace_id`` by value instead — see
``serving/batcher.py`` and ``runtime/runner.py``.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import zlib
from typing import Iterator, Optional

__all__ = [
    "TraceContext", "TraceIdAllocator", "derive_trace_seed",
    "current", "current_trace_id", "attach", "detach", "trace_scope",
]


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """The ambient trace identity for the current task/thread."""

    trace_id: str

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id}

    @classmethod
    def from_dict(cls, doc: dict) -> "TraceContext":
        return cls(trace_id=str(doc["trace_id"]))


def derive_trace_seed(command: str, seed: Optional[int]) -> int:
    """Stable 32-bit namespace for a session's trace ids."""
    return zlib.crc32(f"{command}|{seed}".encode())


class TraceIdAllocator:
    """Monotonic, seeded trace-id mint: ``"<seed:08x>-<counter:06x>"``.

    Deliberately not an RNG: ids must be unique and reproducible, not
    unpredictable, and drawing them from any random stream would risk
    entangling telemetry with experiment determinism.
    """

    __slots__ = ("seed", "_counter")

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed & 0xFFFFFFFF
        self._counter = 0

    def new_trace_id(self) -> str:
        self._counter += 1
        return f"{self.seed:08x}-{self._counter:06x}"

    @property
    def issued(self) -> int:
        return self._counter


# ----------------------------------------------------------------------
# ambient propagation

_CURRENT: contextvars.ContextVar[Optional[TraceContext]] = (
    contextvars.ContextVar("repro_trace_context", default=None)
)


def current() -> Optional[TraceContext]:
    """The ambient trace context, or ``None``."""
    return _CURRENT.get()


def current_trace_id() -> Optional[str]:
    ctx = _CURRENT.get()
    return ctx.trace_id if ctx is not None else None


def attach(ctx: TraceContext) -> contextvars.Token:
    """Install ``ctx`` as the ambient trace; pass the token to
    :func:`detach` to restore the previous one."""
    return _CURRENT.set(ctx)


def detach(token: contextvars.Token) -> None:
    _CURRENT.reset(token)


@contextlib.contextmanager
def trace_scope(trace_id: Optional[str] = None
                ) -> Iterator[Optional[TraceContext]]:
    """Adopt ``trace_id`` (or mint one from the active session) for the
    block.  Yields ``None`` without touching the context when telemetry
    is disabled and no explicit id was given, so the disabled path
    stays a single ``active()`` check.
    """
    if trace_id is None:
        from . import session as _session

        active = _session.active()
        if active is None:
            yield None
            return
        trace_id = active.new_trace_id()
    ctx = TraceContext(trace_id=trace_id)
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)
