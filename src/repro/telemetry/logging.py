"""Structured JSON logging bound to the ambient trace context.

Every log record under the ``repro`` logger tree is rendered as one
JSON object per line on stderr, carrying ``trace_id`` / ``span_id``
when a trace scope or span is open — so a cache-quarantine warning
fired deep inside a campaign worker lands next to the spans of the
request or cell that triggered it.

Call sites get a :class:`StructuredLogger` from :func:`get_logger`;
it is drop-in compatible with the stdlib ``%``-style API
(``log.warning("bad key %s", key)``) and accepts extra keyword fields
that become structured attributes (``log.warning("quarantined", key=k)``).
Everywhere outside :mod:`repro.telemetry`, using ``logging.getLogger``
directly is a lint violation (rule ``OBS001``).

Log *routing* stays stdlib: handlers/levels attach to the ordinary
``logging.getLogger("repro")`` logger, so applications embedding the
library can reconfigure it the usual way.
"""

from __future__ import annotations

import json
import logging as _stdlib_logging
import sys
from typing import Any

from . import context
from . import session as _session

__all__ = ["StructuredLogger", "JsonLineFormatter", "get_logger"]

_ROOT_NAME = "repro"
_configured = False


class JsonLineFormatter(_stdlib_logging.Formatter):
    """One sorted-key JSON object per record."""

    def format(self, record: _stdlib_logging.LogRecord) -> str:
        doc: dict = {
            "ts": record.created,
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        trace_id = context.current_trace_id()
        if trace_id is not None:
            doc["trace_id"] = trace_id
        active = _session.active()
        if active is not None:
            span = active.tracer.current_span
            if span is not None:
                doc["span_id"] = span.span_id
                if trace_id is None and span.trace_id is not None:
                    doc["trace_id"] = span.trace_id
        fields = getattr(record, "fields", None)
        if fields:
            doc["fields"] = fields
        if record.exc_info:
            doc["exc"] = self.formatException(record.exc_info)
        return json.dumps(doc, sort_keys=True, default=str)


def _configure() -> _stdlib_logging.Logger:
    """Attach the JSON handler to the ``repro`` root logger once.

    Idempotent, and a no-op when the application already installed its
    own handlers on ``logging.getLogger("repro")``.
    """
    global _configured
    root = _stdlib_logging.getLogger(_ROOT_NAME)
    if not _configured:
        if not root.handlers:
            handler = _stdlib_logging.StreamHandler(sys.stderr)
            handler.setFormatter(JsonLineFormatter())
            root.addHandler(handler)
            root.setLevel(_stdlib_logging.WARNING)
            root.propagate = False
        _configured = True
    return root


class StructuredLogger:
    """Thin wrapper routing ``%``-style records plus keyword fields."""

    __slots__ = ("_logger",)

    def __init__(self, logger: _stdlib_logging.Logger) -> None:
        self._logger = logger

    @property
    def name(self) -> str:
        return self._logger.name

    def _log(self, level: int, message: str, args: tuple,
             fields: dict, exc_info: Any = None) -> None:
        active = _session.active()
        if active is not None:
            active.count(
                "log.records." + _stdlib_logging.getLevelName(level).lower()
            )
        self._logger.log(
            level, message, *args,
            extra={"fields": fields} if fields else None,
            exc_info=exc_info,
        )

    def debug(self, message: str, *args: Any, **fields: Any) -> None:
        self._log(_stdlib_logging.DEBUG, message, args, fields)

    def info(self, message: str, *args: Any, **fields: Any) -> None:
        self._log(_stdlib_logging.INFO, message, args, fields)

    def warning(self, message: str, *args: Any, **fields: Any) -> None:
        self._log(_stdlib_logging.WARNING, message, args, fields)

    def error(self, message: str, *args: Any, **fields: Any) -> None:
        self._log(_stdlib_logging.ERROR, message, args, fields)

    def exception(self, message: str, *args: Any, **fields: Any) -> None:
        self._log(_stdlib_logging.ERROR, message, args, fields,
                  exc_info=True)


def get_logger(name: str = _ROOT_NAME) -> StructuredLogger:
    """The structured logger for ``name`` (configured on first use)."""
    _configure()
    if name != _ROOT_NAME and not name.startswith(_ROOT_NAME + "."):
        name = _ROOT_NAME + "." + name
    return StructuredLogger(_stdlib_logging.getLogger(name))
