"""Run manifests: what produced this telemetry, exactly.

A :class:`RunManifest` snapshots everything needed to tie a metrics /
span dump back to a reproducible invocation: the command and argv, a
content fingerprint of the resolved configuration, the master seed,
the git commit, library versions, wall-clock bounds and the final
metrics snapshot.  It is the piece the energy-model calibration
literature calls the "accounting substrate" — a perf or reliability
claim is only auditable if the run that produced it is pinned down.

Manifests are persisted as ``manifest.json`` through the artifact
store's atomic-write path (:func:`repro.store.atomic.atomic_write_json`),
so a crash mid-save never leaves a torn manifest next to valid spans.
"""

from __future__ import annotations

import dataclasses
import platform
import subprocess
from typing import Any, Dict, List, Optional, Sequence

from . import clock

__all__ = ["RunManifest", "MANIFEST_VERSION"]

MANIFEST_VERSION = 1

#: every field a valid manifest document must carry
REQUIRED_FIELDS = (
    "manifest_version",
    "command",
    "argv",
    "config_fingerprint",
    "seed",
    "git_sha",
    "versions",
    "started_at",
    "finished_at",
    "duration_s",
    "metrics",
)


def _git_sha() -> Optional[str]:
    """Commit of the working tree, or ``None`` outside a checkout."""
    import os

    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _library_versions() -> Dict[str, str]:
    import numpy

    from .. import __version__

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "repro": __version__,
    }


@dataclasses.dataclass
class RunManifest:
    """Provenance + outcome record of one instrumented run."""

    command: str
    argv: List[str]
    config_fingerprint: Optional[str]
    seed: Optional[int]
    git_sha: Optional[str]
    versions: Dict[str, str]
    started_at: float
    finished_at: Optional[float] = None
    duration_s: Optional[float] = None
    metrics: Dict[str, Any] = dataclasses.field(default_factory=dict)
    # Optional serving SLO summary (admitted p99 vs deadline budget),
    # recorded by the daemon at drain; deliberately NOT in
    # REQUIRED_FIELDS so pre-existing manifests stay valid.
    slo: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    @classmethod
    def begin(
        cls,
        command: str,
        argv: Sequence[str] = (),
        config: Optional[dict] = None,
        seed: Optional[int] = None,
    ) -> "RunManifest":
        """Open a manifest at run start.

        ``config`` is any JSON-serialisable mapping describing the
        resolved invocation (e.g. the parsed CLI namespace); it is
        fingerprinted with the same canonical content hash the artifact
        store keys on (:func:`repro.store.keys.spec_hash`).
        """
        fingerprint = None
        if config is not None:
            from ..store.keys import spec_hash

            fingerprint = spec_hash(config)
        return cls(
            command=command,
            argv=list(argv),
            config_fingerprint=fingerprint,
            seed=seed,
            git_sha=_git_sha(),
            versions=_library_versions(),
            started_at=clock.wall(),
        )

    def finish(self, metrics: Optional[dict] = None) -> "RunManifest":
        """Close the manifest with the final metrics snapshot."""
        self.finished_at = clock.wall()
        self.duration_s = self.finished_at - self.started_at
        if metrics is not None:
            self.metrics = metrics
        return self

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        doc = dataclasses.asdict(self)
        doc["manifest_version"] = MANIFEST_VERSION
        return doc

    def save(self, path: str) -> None:
        """Atomically persist the manifest document."""
        from ..store.atomic import atomic_write_json

        atomic_write_json(path, self.to_dict())

    # ------------------------------------------------------------------
    @staticmethod
    def validate(doc: Any) -> List[str]:
        """Schema problems of a loaded manifest document ([] = valid)."""
        if not isinstance(doc, dict):
            return ["manifest is not a JSON object"]
        problems = [f"missing field: {field}" for field in REQUIRED_FIELDS
                    if field not in doc]
        if not problems and doc["manifest_version"] != MANIFEST_VERSION:
            problems.append(
                f"unsupported manifest_version {doc['manifest_version']!r}"
            )
        if not problems and not isinstance(doc["metrics"], dict):
            problems.append("metrics is not an object")
        if not problems and not isinstance(doc["versions"], dict):
            problems.append("versions is not an object")
        return problems
