"""Named counters, gauges and streaming histograms.

A :class:`MetricsRegistry` is a flat namespace of metrics keyed by
dotted lowercase names (``mvm.count``, ``runner.chunk_seconds``).
Instruments are created on first use and are plain mutable objects —
no locks, no background threads, no third-party client.

Histograms keep a fixed-size reservoir (algorithm R) so quantile
estimates stay O(1) memory for arbitrarily long runs.  The reservoir's
replacement draws come from a :class:`numpy.random.Generator` seeded
from the registry seed and the metric name, so a telemetry snapshot is
a deterministic function of the observation sequence — and, crucially,
the draws never touch any experiment RNG stream: enabling telemetry
cannot change what an experiment computes.
"""

from __future__ import annotations

import math
import zlib
from typing import Dict, List, Optional

import numpy as np

__all__ = ["Counter", "Gauge", "StreamingHistogram", "MetricsRegistry"]


class Counter:
    """A monotonic-by-convention accumulator (negative deltas allowed
    for explicit retractions, e.g. the store un-counting a hit whose
    payload failed to decode)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: float = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A last-value-wins instrument (e.g. worker utilisation)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class StreamingHistogram:
    """Streaming distribution summary over a fixed seeded reservoir.

    Exact while the observation count stays within ``reservoir_size``
    (every sample is retained, so quantiles match a numpy reference on
    the full sequence); beyond that it degrades gracefully to a uniform
    random sample maintained by algorithm R.
    """

    __slots__ = ("name", "reservoir_size", "count", "total",
                 "min", "max", "_buffer", "_rng")

    def __init__(self, name: str, reservoir_size: int = 1024,
                 seed: int = 0) -> None:
        from ..errors import ConfigurationError

        if reservoir_size < 1:
            raise ConfigurationError(
                f"reservoir_size must be >= 1, got {reservoir_size!r}"
            )
        self.name = name
        self.reservoir_size = reservoir_size
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._buffer: List[float] = []
        self._rng = np.random.default_rng(seed)

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        if len(self._buffer) < self.reservoir_size:
            self._buffer.append(v)
        else:
            slot = int(self._rng.integers(0, self.count))
            if slot < self.reservoir_size:
                self._buffer[slot] = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (exact below the reservoir size)."""
        if not self._buffer:
            return math.nan
        return float(np.percentile(self._buffer, 100.0 * q))

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean if self.count else None,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": self.quantile(0.50) if self.count else None,
            "p95": self.quantile(0.95) if self.count else None,
            "p99": self.quantile(0.99) if self.count else None,
        }

    def __repr__(self) -> str:
        return (f"StreamingHistogram({self.name!r}, count={self.count}, "
                f"mean={self.mean if self.count else None})")


class MetricsRegistry:
    """Get-or-create namespace of counters, gauges and histograms.

    Parameters
    ----------
    seed:
        Base seed for histogram reservoirs; each histogram derives its
        own stream from ``seed + crc32(name)`` (the same discipline as
        :mod:`repro.runtime.seeding`), so snapshots are deterministic
        and independent of creation order.
    reservoir_size:
        Per-histogram sample capacity.
    """

    def __init__(self, seed: int = 0, reservoir_size: int = 1024) -> None:
        self.seed = seed
        self.reservoir_size = reservoir_size
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, StreamingHistogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> StreamingHistogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = StreamingHistogram(
                name,
                reservoir_size=self.reservoir_size,
                seed=self.seed + zlib.crc32(name.encode()),
            )
        return metric

    # convenience write paths ------------------------------------------
    def count(self, name: str, n: float = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready view of every metric (sorted, stable)."""
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "histograms": {name: self._histograms[name].snapshot()
                           for name in sorted(self._histograms)},
        }

    def __repr__(self) -> str:
        return (f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)})")
