"""Named counters, gauges and streaming histograms.

A :class:`MetricsRegistry` is a flat namespace of metrics keyed by
dotted lowercase names (``mvm.count``, ``runner.chunk_seconds``).
Instruments are created on first use and are plain mutable objects —
no locks, no background threads, no third-party client.

Histograms keep a fixed-size reservoir (algorithm R) so quantile
estimates stay O(1) memory for arbitrarily long runs.  The reservoir's
replacement draws come from a :class:`numpy.random.Generator` seeded
from the registry seed and the metric name, so a telemetry snapshot is
a deterministic function of the observation sequence — and, crucially,
the draws never touch any experiment RNG stream: enabling telemetry
cannot change what an experiment computes.
"""

from __future__ import annotations

import bisect
import collections
import math
import zlib
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import clock

__all__ = [
    "Counter", "Gauge", "StreamingHistogram", "MetricsRegistry",
    "DEFAULT_BUCKET_BOUNDS",
]

# Log-spaced default histogram buckets (1-2.5-5 per decade), wide
# enough to cover microsecond span costs and multi-second campaigns.
DEFAULT_BUCKET_BOUNDS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0,
)


class Counter:
    """A monotonic-by-convention accumulator (negative deltas allowed
    for explicit retractions, e.g. the store un-counting a hit whose
    payload failed to decode)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: float = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A last-value-wins instrument (e.g. worker utilisation).

    Every ``set`` also lands in a fixed-size ring of
    ``(wall_seconds, value)`` samples, so scrapes can report the recent
    trend of fast-moving gauges (queue depth, utilisation) without
    unbounded memory.
    """

    RING_SIZE = 64

    __slots__ = ("name", "value", "_ring")

    def __init__(self, name: str, ring_size: int = RING_SIZE) -> None:
        self.name = name
        self.value: Optional[float] = None
        self._ring: Deque[Tuple[float, float]] = collections.deque(
            maxlen=ring_size
        )

    def set(self, value: float) -> None:
        self.value = float(value)
        self._ring.append((clock.wall(), self.value))

    def samples(self) -> List[Tuple[float, float]]:
        """The retained ``(wall, value)`` ring, oldest first."""
        return list(self._ring)

    def trend(self) -> dict:
        """Min/mean/max summary over the retained ring."""
        if not self._ring:
            return {"count": 0, "min": None, "mean": None, "max": None,
                    "window_s": 0.0}
        values = [value for _, value in self._ring]
        return {
            "count": len(values),
            "min": min(values),
            "mean": sum(values) / len(values),
            "max": max(values),
            "window_s": self._ring[-1][0] - self._ring[0][0],
        }

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class StreamingHistogram:
    """Streaming distribution summary over a fixed seeded reservoir.

    Exact while the observation count stays within ``reservoir_size``
    (every sample is retained, so quantiles match a numpy reference on
    the full sequence); beyond that it degrades gracefully to a uniform
    random sample maintained by algorithm R.
    """

    __slots__ = ("name", "reservoir_size", "count", "total",
                 "min", "max", "bounds", "_bucket_counts",
                 "_buffer", "_rng")

    def __init__(self, name: str, reservoir_size: int = 1024,
                 seed: int = 0,
                 bounds: Optional[Sequence[float]] = None) -> None:
        from ..errors import ConfigurationError

        if reservoir_size < 1:
            raise ConfigurationError(
                f"reservoir_size must be >= 1, got {reservoir_size!r}"
            )
        self.name = name
        self.reservoir_size = reservoir_size
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        # Fixed le-bucket bounds (exact counts, unlike the sampled
        # reservoir) for OpenMetrics exposition; last slot is +Inf.
        self.bounds: Tuple[float, ...] = tuple(
            sorted(bounds) if bounds is not None else DEFAULT_BUCKET_BOUNDS
        )
        self._bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self._buffer: List[float] = []
        self._rng = np.random.default_rng(seed)

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        self._bucket_counts[bisect.bisect_left(self.bounds, v)] += 1
        if len(self._buffer) < self.reservoir_size:
            self._buffer.append(v)
        else:
            slot = int(self._rng.integers(0, self.count))
            if slot < self.reservoir_size:
                self._buffer[slot] = v

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(le_bound, cumulative_count)`` pairs ending at ``+Inf``.

        Counts are exact (every observation increments exactly one
        underlying bucket) and non-decreasing in ``le`` order, matching
        the Prometheus/OpenMetrics histogram contract.
        """
        pairs: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self._bucket_counts):
            running += n
            pairs.append((bound, running))
        pairs.append((math.inf, running + self._bucket_counts[-1]))
        return pairs

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (exact below the reservoir size)."""
        if not self._buffer:
            return math.nan
        return float(np.percentile(self._buffer, 100.0 * q))

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean if self.count else None,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": self.quantile(0.50) if self.count else None,
            "p95": self.quantile(0.95) if self.count else None,
            "p99": self.quantile(0.99) if self.count else None,
        }

    def __repr__(self) -> str:
        return (f"StreamingHistogram({self.name!r}, count={self.count}, "
                f"mean={self.mean if self.count else None})")


class MetricsRegistry:
    """Get-or-create namespace of counters, gauges and histograms.

    Parameters
    ----------
    seed:
        Base seed for histogram reservoirs; each histogram derives its
        own stream from ``seed + crc32(name)`` (the same discipline as
        :mod:`repro.runtime.seeding`), so snapshots are deterministic
        and independent of creation order.
    reservoir_size:
        Per-histogram sample capacity.
    """

    def __init__(self, seed: int = 0, reservoir_size: int = 1024) -> None:
        self.seed = seed
        self.reservoir_size = reservoir_size
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, StreamingHistogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> StreamingHistogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = StreamingHistogram(
                name,
                reservoir_size=self.reservoir_size,
                seed=self.seed + zlib.crc32(name.encode()),
            )
        return metric

    # convenience write paths ------------------------------------------
    def count(self, name: str, n: float = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # read paths (name-sorted, for exposition renderers) ---------------
    def counters(self) -> List[Counter]:
        return [self._counters[name] for name in sorted(self._counters)]

    def gauges(self) -> List[Gauge]:
        return [self._gauges[name] for name in sorted(self._gauges)]

    def histograms(self) -> List[StreamingHistogram]:
        return [self._histograms[name] for name in sorted(self._histograms)]

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready view of every metric (sorted, stable)."""
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "histograms": {name: self._histograms[name].snapshot()
                           for name in sorted(self._histograms)},
        }

    def __repr__(self) -> str:
        return (f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)})")
