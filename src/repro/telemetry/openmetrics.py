"""OpenMetrics text exposition and a minimal validating parser.

Renders :class:`~repro.telemetry.metrics.MetricsRegistry` instruments
(and the serving daemon's bespoke counters) in the OpenMetrics 1.0
text format — ``# TYPE``/``# HELP`` metadata, escaped label values,
histograms as cumulative ``_bucket{le=...}`` series plus ``_sum`` /
``_count``, and the mandatory ``# EOF`` terminator — so any Prometheus
scraper can consume ``GET /metrics`` via content negotiation.

:func:`parse_openmetrics` is the counterpart used by tests and CI: it
checks structural validity (terminator present, samples declared by a
preceding ``# TYPE``, bucket counts monotone and consistent with
``_count``) and returns the parsed samples for value comparison with
the JSON rendering.  It is a validator for our own exposition, not a
general scraper.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from ..errors import ArtifactError

__all__ = [
    "CONTENT_TYPE", "OpenMetricsBuilder",
    "sanitize_metric_name", "escape_label_value",
    "render_registry", "parse_openmetrics",
]

#: the content type negotiated on ``GET /metrics``
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def sanitize_metric_name(name: str) -> str:
    """Map a dotted registry name onto the OpenMetrics charset."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _NAME_RE.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def escape_label_value(value: str) -> str:
    """Escape backslash, double-quote and newline per the spec."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def _format_labels(labels: Optional[Dict[str, str]]) -> str:
    if not labels:
        return ""
    parts = [
        f'{key}="{escape_label_value(labels[key])}"'
        for key in sorted(labels)
    ]
    return "{" + ",".join(parts) + "}"


class OpenMetricsBuilder:
    """Accumulates metric families and renders the exposition text.

    Samples for one family may be added across several calls (e.g. one
    counter per model label); they are grouped under a single ``# TYPE``
    block in first-seen family order.
    """

    def __init__(self) -> None:
        # family name -> (type, help, [sample lines])
        self._families: Dict[str, Tuple[str, Optional[str], List[str]]] = {}
        self._order: List[str] = []

    def _family(self, name: str, mtype: str,
                help_text: Optional[str]) -> List[str]:
        name = sanitize_metric_name(name)
        entry = self._families.get(name)
        if entry is None:
            entry = self._families[name] = (mtype, help_text, [])
            self._order.append(name)
        elif entry[0] != mtype:
            raise ArtifactError(
                f"metric family {name!r} registered as {entry[0]}, "
                f"cannot re-register as {mtype}"
            )
        return entry[2]

    def counter(self, name: str, value: float,
                labels: Optional[Dict[str, str]] = None,
                help_text: Optional[str] = None) -> None:
        name = sanitize_metric_name(name)
        if name.endswith("_total"):
            name = name[: -len("_total")]
        samples = self._family(name, "counter", help_text)
        samples.append(
            f"{name}_total{_format_labels(labels)} {_format_value(value)}"
        )

    def gauge(self, name: str, value: float,
              labels: Optional[Dict[str, str]] = None,
              help_text: Optional[str] = None) -> None:
        name = sanitize_metric_name(name)
        samples = self._family(name, "gauge", help_text)
        samples.append(
            f"{name}{_format_labels(labels)} {_format_value(value)}"
        )

    def histogram(self, name: str,
                  buckets: List[Tuple[float, int]],
                  total: float, count: int,
                  labels: Optional[Dict[str, str]] = None,
                  help_text: Optional[str] = None) -> None:
        """``buckets`` are cumulative ``(le_bound, count)`` pairs; a
        final ``+Inf`` bucket is appended if missing."""
        name = sanitize_metric_name(name)
        samples = self._family(name, "histogram", help_text)
        if not buckets or buckets[-1][0] != math.inf:
            buckets = list(buckets) + [(math.inf, count)]
        for bound, cumulative in buckets:
            lab = dict(labels or {})
            lab["le"] = _format_value(float(bound))
            samples.append(
                f"{name}_bucket{_format_labels(lab)} {cumulative}"
            )
        samples.append(
            f"{name}_sum{_format_labels(labels)} {_format_value(total)}"
        )
        samples.append(f"{name}_count{_format_labels(labels)} {count}")

    def render(self) -> str:
        lines: List[str] = []
        for name in self._order:
            mtype, help_text, samples = self._families[name]
            lines.append(f"# TYPE {name} {mtype}")
            if help_text:
                lines.append(f"# HELP {name} {escape_label_value(help_text)}")
            lines.extend(samples)
        lines.append("# EOF")
        return "\n".join(lines) + "\n"


def render_registry(registry, prefix: str = "repro_") -> str:
    """Render a :class:`MetricsRegistry` as OpenMetrics text.

    Counters become ``<prefix><name>_total``; gauges additionally emit
    a ``_trend`` gauge family (min/mean/max over the retained ring)
    when samples exist; histograms expose their exact fixed buckets.
    """
    builder = OpenMetricsBuilder()
    for counter in registry.counters():
        builder.counter(prefix + counter.name, counter.value)
    for gauge in registry.gauges():
        if gauge.value is not None:
            builder.gauge(prefix + gauge.name, gauge.value)
        trend = gauge.trend()
        if trend["count"]:
            for stat in ("min", "mean", "max"):
                builder.gauge(
                    prefix + gauge.name + "_trend", trend[stat],
                    labels={"stat": stat},
                )
    for histogram in registry.histograms():
        builder.histogram(
            prefix + histogram.name,
            histogram.cumulative_buckets(),
            total=histogram.total,
            count=histogram.count,
        )
    return builder.render()


# ----------------------------------------------------------------------
# minimal validating parser


def _parse_labels(text: str, line_no: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.find("=", i)
        if eq < 0:
            raise ArtifactError(
                f"line {line_no}: label without '=' in {text[i:]!r}"
            )
        key = text[i:eq]
        if not _LABEL_NAME_RE.match(key):
            raise ArtifactError(
                f"line {line_no}: invalid label name {key!r}"
            )
        if eq + 1 >= len(text) or text[eq + 1] != '"':
            raise ArtifactError(
                f"line {line_no}: unquoted label value for {key!r}"
            )
        value_chars: List[str] = []
        j = eq + 2
        while j < len(text):
            ch = text[j]
            if ch == "\\":
                if j + 1 >= len(text):
                    raise ArtifactError(
                        f"line {line_no}: dangling escape in label value"
                    )
                nxt = text[j + 1]
                value_chars.append(
                    {"\\": "\\", '"': '"', "n": "\n"}.get(nxt, nxt)
                )
                j += 2
                continue
            if ch == '"':
                break
            value_chars.append(ch)
            j += 1
        else:
            raise ArtifactError(
                f"line {line_no}: unterminated label value for {key!r}"
            )
        labels[key] = "".join(value_chars)
        i = j + 1
        if i < len(text):
            if text[i] != ",":
                raise ArtifactError(
                    f"line {line_no}: expected ',' between labels"
                )
            i += 1
    return labels


def _parse_value(text: str, line_no: int) -> float:
    token = text.strip()
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    try:
        return float(token)
    except ValueError:
        raise ArtifactError(f"line {line_no}: bad sample value {token!r}")


def _family_of(sample_name: str, families: Dict[str, str]) -> Optional[str]:
    if sample_name in families:
        return sample_name
    for suffix in ("_total", "_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families:
                return base
    return None


def parse_openmetrics(text: str) -> dict:
    """Validate and parse an OpenMetrics exposition.

    Returns ``{"families": {name: type}, "samples": [(name, labels,
    value), ...]}``.  Raises :class:`~repro.errors.ArtifactError` on
    structural violations: missing ``# EOF``, samples without a
    preceding ``# TYPE``, invalid names, non-monotonic histogram
    buckets, or a ``+Inf`` bucket disagreeing with ``_count``.
    """
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        raise ArtifactError("exposition does not end with '# EOF'")
    families: Dict[str, str] = {}
    samples: List[Tuple[str, Dict[str, str], float]] = []
    # histogram series key -> [(le, cumulative), ...]
    buckets: Dict[str, List[Tuple[float, float]]] = {}
    counts: Dict[str, float] = {}
    for line_no, line in enumerate(lines[:-1], start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                name, mtype = parts[2], (parts[3] if len(parts) > 3 else "")
                if not _NAME_RE.match(name):
                    raise ArtifactError(
                        f"line {line_no}: invalid family name {name!r}"
                    )
                if name in families:
                    raise ArtifactError(
                        f"line {line_no}: duplicate TYPE for {name!r}"
                    )
                if mtype not in ("counter", "gauge", "histogram",
                                 "summary", "unknown"):
                    raise ArtifactError(
                        f"line {line_no}: unknown metric type {mtype!r}"
                    )
                families[name] = mtype
            continue
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise ArtifactError(f"line {line_no}: unbalanced braces")
            name = line[:brace]
            labels = _parse_labels(line[brace + 1:close], line_no)
            value = _parse_value(line[close + 1:], line_no)
        else:
            name, _, rest = line.partition(" ")
            labels = {}
            value = _parse_value(rest, line_no)
        if not _NAME_RE.match(name):
            raise ArtifactError(
                f"line {line_no}: invalid sample name {name!r}"
            )
        family = _family_of(name, families)
        if family is None:
            raise ArtifactError(
                f"line {line_no}: sample {name!r} has no preceding # TYPE"
            )
        mtype = families[family]
        if mtype == "counter" and not name.endswith("_total"):
            raise ArtifactError(
                f"line {line_no}: counter sample {name!r} "
                "must end with _total"
            )
        if mtype == "histogram" and name.endswith("_bucket"):
            if "le" not in labels:
                raise ArtifactError(
                    f"line {line_no}: histogram bucket without 'le' label"
                )
            series = tuple(sorted(
                item for item in labels.items() if item[0] != "le"
            ))
            key = f"{family}{series!r}"
            le = _parse_value(labels["le"], line_no)
            buckets.setdefault(key, []).append((le, value))
        if mtype == "histogram" and name.endswith("_count"):
            series = tuple(sorted(labels.items()))
            counts[f"{family}{series!r}"] = value
        samples.append((name, labels, value))
    for key, series in buckets.items():
        bounds = [le for le, _ in series]
        cumulative = [n for _, n in series]
        if bounds != sorted(bounds):
            raise ArtifactError(f"histogram {key}: 'le' bounds not sorted")
        if cumulative != sorted(cumulative):
            raise ArtifactError(
                f"histogram {key}: bucket counts not monotone"
            )
        if bounds[-1] != math.inf:
            raise ArtifactError(f"histogram {key}: missing +Inf bucket")
        declared = counts.get(key)
        if declared is not None and declared != cumulative[-1]:
            raise ArtifactError(
                f"histogram {key}: +Inf bucket {cumulative[-1]} != "
                f"_count {declared}"
            )
    return {"families": families, "samples": samples}
