"""Load and render persisted telemetry (``repro report`` backend).

A telemetry directory holds the two files a
:meth:`repro.telemetry.session.TelemetrySession.save` wrote:
``manifest.json`` (validated against :class:`RunManifest`'s schema) and
``spans.jsonl`` (one span document per line, creation order).  This
module reconstructs both and renders them as text tables (via
:func:`repro.analysis.tables.render_table`) or a single JSON document.

Kept out of ``repro.telemetry.__init__`` so importing the
instrumentation layer never drags in the analysis stack.
"""

from __future__ import annotations

import json
import os
from typing import List, Tuple

from ..errors import ArtifactError
from ..units import MILLI
from .manifest import RunManifest

__all__ = ["load_run", "render_report_text", "render_report_json"]


def load_run(directory: str) -> Tuple[dict, List[dict]]:
    """Load ``(manifest, spans)`` from a telemetry directory.

    Raises :class:`~repro.errors.ArtifactError` when the directory is
    missing, a file is unreadable, or the manifest fails schema
    validation — a telemetry dump that cannot be tied to a run is not
    evidence of anything.
    """
    manifest_path = os.path.join(directory, "manifest.json")
    spans_path = os.path.join(directory, "spans.jsonl")
    if not os.path.isfile(manifest_path):
        raise ArtifactError(f"no manifest.json under {directory!r}")
    try:
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except (OSError, ValueError) as exc:
        raise ArtifactError(f"unreadable manifest {manifest_path!r}: {exc}")
    problems = RunManifest.validate(manifest)
    if problems:
        raise ArtifactError(
            f"invalid manifest {manifest_path!r}: " + "; ".join(problems)
        )
    spans: List[dict] = []
    if os.path.isfile(spans_path):
        try:
            with open(spans_path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if line:
                        spans.append(json.loads(line))
        except (OSError, ValueError) as exc:
            raise ArtifactError(f"unreadable spans {spans_path!r}: {exc}")
    return manifest, spans


def _render_span_tree(spans: List[dict]) -> str:
    if not spans:
        return "(no spans recorded)"
    lines = []
    for span in spans:
        duration = span.get("duration_s")
        duration_txt = ("...open" if duration is None
                        else f"{duration / MILLI:.1f} ms")
        cpu = span.get("cpu_s")
        cpu_txt = f" cpu {cpu / MILLI:.1f} ms" if cpu is not None else ""
        attrs = "".join(
            f" {key}={value}"
            for key, value in sorted((span.get("attrs") or {}).items())
        )
        status = span.get("status", "ok")
        flag = "" if status == "ok" else f" [{status}]"
        indent = "  " * int(span.get("depth", 0))
        lines.append(
            f"{indent}{span['name']}  {duration_txt}{cpu_txt}{attrs}{flag}"
        )
    return "\n".join(lines)


def render_report_text(manifest: dict, spans: List[dict]) -> str:
    """Human-readable report: manifest, span tree, metrics tables."""
    from ..analysis.tables import render_table

    manifest_rows = [
        ["command", manifest["command"]],
        ["argv", " ".join(manifest["argv"])],
        ["config_fingerprint", manifest["config_fingerprint"]],
        ["seed", manifest["seed"]],
        ["git_sha", manifest["git_sha"]],
        ["duration_s", manifest["duration_s"]],
    ]
    for lib, version in sorted(manifest["versions"].items()):
        manifest_rows.append([f"version.{lib}", version])
    sections = [
        render_table(["field", "value"], manifest_rows, title="Run manifest"),
        "Span tree\n" + _render_span_tree(spans),
    ]

    metrics = manifest["metrics"]
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    value_rows = [[name, value] for name, value in sorted(counters.items())]
    value_rows += [[name, value] for name, value in sorted(gauges.items())]
    if value_rows:
        sections.append(
            render_table(["metric", "value"], value_rows,
                         title="Counters & gauges")
        )
    if histograms:
        hist_rows = [
            [name, snap["count"], snap["mean"], snap["p50"], snap["p95"],
             snap["p99"], snap["max"]]
            for name, snap in sorted(histograms.items())
        ]
        sections.append(
            render_table(
                ["histogram", "count", "mean", "p50", "p95", "p99", "max"],
                hist_rows, title="Histograms",
            )
        )
    return "\n\n".join(sections)


def render_report_json(manifest: dict, spans: List[dict]) -> str:
    """Machine-readable report: one JSON document, stable key order."""
    return json.dumps(
        {"manifest": manifest, "spans": spans}, sort_keys=True, indent=2
    )
