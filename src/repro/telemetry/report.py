"""Load and render persisted telemetry (``repro report`` backend).

A telemetry directory holds the two files a
:meth:`repro.telemetry.session.TelemetrySession.save` wrote:
``manifest.json`` (validated against :class:`RunManifest`'s schema) and
``spans.jsonl`` (one span document per line, creation order).  This
module reconstructs both and renders them as text tables (via
:func:`repro.analysis.tables.render_table`) or a single JSON document.

Kept out of ``repro.telemetry.__init__`` so importing the
instrumentation layer never drags in the analysis stack.
"""

from __future__ import annotations

import json
import os
from typing import List, Tuple

from ..errors import ArtifactError
from ..units import MILLI
from .manifest import RunManifest

__all__ = [
    "load_run", "render_report_text", "render_report_json",
    "render_report_trace",
]


def load_run(directory: str) -> Tuple[dict, List[dict]]:
    """Load ``(manifest, spans)`` from a telemetry directory.

    Raises :class:`~repro.errors.ArtifactError` when the directory is
    missing, a file is unreadable, or the manifest fails schema
    validation — a telemetry dump that cannot be tied to a run is not
    evidence of anything.
    """
    manifest_path = os.path.join(directory, "manifest.json")
    spans_path = os.path.join(directory, "spans.jsonl")
    if not os.path.isfile(manifest_path):
        raise ArtifactError(f"no manifest.json under {directory!r}")
    try:
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except (OSError, ValueError) as exc:
        raise ArtifactError(f"unreadable manifest {manifest_path!r}: {exc}")
    problems = RunManifest.validate(manifest)
    if problems:
        raise ArtifactError(
            f"invalid manifest {manifest_path!r}: " + "; ".join(problems)
        )
    spans: List[dict] = []
    if os.path.isfile(spans_path):
        try:
            with open(spans_path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if line:
                        spans.append(json.loads(line))
        except (OSError, ValueError) as exc:
            raise ArtifactError(f"unreadable spans {spans_path!r}: {exc}")
    return manifest, spans


def _render_span_tree(spans: List[dict], depth_offset: int = 0) -> str:
    if not spans:
        return "(no spans recorded)"
    lines = []
    for span in spans:
        duration = span.get("duration_s")
        duration_txt = ("...open" if duration is None
                        else f"{duration / MILLI:.1f} ms")
        cpu = span.get("cpu_s")
        cpu_txt = f" cpu {cpu / MILLI:.1f} ms" if cpu is not None else ""
        attrs = "".join(
            f" {key}={value}"
            for key, value in sorted((span.get("attrs") or {}).items())
        )
        status = span.get("status", "ok")
        flag = "" if status == "ok" else f" [{status}]"
        indent = "  " * max(int(span.get("depth", 0)) - depth_offset, 0)
        lines.append(
            f"{indent}{span['name']}  {duration_txt}{cpu_txt}{attrs}{flag}"
        )
    return "\n".join(lines)


def render_report_text(manifest: dict, spans: List[dict]) -> str:
    """Human-readable report: manifest, span tree, metrics tables."""
    from ..analysis.tables import render_table

    manifest_rows = [
        ["command", manifest["command"]],
        ["argv", " ".join(manifest["argv"])],
        ["config_fingerprint", manifest["config_fingerprint"]],
        ["seed", manifest["seed"]],
        ["git_sha", manifest["git_sha"]],
        ["duration_s", manifest["duration_s"]],
    ]
    for lib, version in sorted(manifest["versions"].items()):
        manifest_rows.append([f"version.{lib}", version])
    sections = [
        render_table(["field", "value"], manifest_rows, title="Run manifest"),
        "Span tree\n" + _render_span_tree(spans),
    ]

    metrics = manifest["metrics"]
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    value_rows = [[name, value] for name, value in sorted(counters.items())]
    value_rows += [[name, value] for name, value in sorted(gauges.items())]
    if value_rows:
        sections.append(
            render_table(["metric", "value"], value_rows,
                         title="Counters & gauges")
        )
    if histograms:
        hist_rows = [
            [name, snap["count"], snap["mean"], snap["p50"], snap["p95"],
             snap["p99"], snap["max"]]
            for name, snap in sorted(histograms.items())
        ]
        sections.append(
            render_table(
                ["histogram", "count", "mean", "p50", "p95", "p99", "max"],
                hist_rows, title="Histograms",
            )
        )
    return "\n\n".join(sections)


def _render_slo_footer(manifest: dict) -> str:
    slo = manifest.get("slo")
    if not slo:
        return "SLO: no serving SLO recorded in this manifest"
    admitted = slo.get("admitted", 0)
    p99_ms = slo.get("admitted_p99_ms")
    budget_ms = slo.get("deadline_budget_ms")
    if not admitted or p99_ms is None:
        return "SLO: no admitted requests recorded"
    line = f"SLO: admitted {admitted} request(s), p99 {p99_ms:.1f} ms"
    if budget_ms is None:
        return line + " (no deadline budget requested)"
    verdict = "within budget" if p99_ms <= budget_ms else "BUDGET MISSED"
    return line + f" vs deadline budget {budget_ms:.1f} ms — {verdict}"


def render_report_trace(manifest: dict, spans: List[dict]) -> str:
    """Stitched per-trace trees with wall/CPU costs and an SLO footer.

    Spans are grouped by ``trace_id`` (first-seen order, untraced spans
    last) and each group is rendered as its own tree — for a serving
    run that is one tree per admitted request; for a campaign, one tree
    spanning scheduler cells and the grafted worker-side spans.
    """
    order: List[str] = []
    groups: dict = {}
    untraced: List[dict] = []
    for span in spans:
        trace_id = span.get("trace_id")
        if trace_id is None:
            untraced.append(span)
            continue
        if trace_id not in groups:
            groups[trace_id] = []
            order.append(trace_id)
        groups[trace_id].append(span)

    sections = [
        f"Trace report — command {manifest['command']!r}, "
        f"{len(spans)} span(s), {len(order)} trace(s)"
    ]
    for trace_id in order:
        members = groups[trace_id]
        base_depth = min(int(span.get("depth", 0)) for span in members)
        wall_s = sum(span.get("duration_s") or 0.0 for span in members
                     if int(span.get("depth", 0)) == base_depth)
        header = (f"trace {trace_id} — {len(members)} span(s), "
                  f"{wall_s / MILLI:.1f} ms")
        sections.append(
            header + "\n" + _render_span_tree(members, depth_offset=base_depth)
        )
    if untraced:
        sections.append(
            f"(untraced) — {len(untraced)} span(s)\n"
            + _render_span_tree(untraced)
        )
    sections.append(_render_slo_footer(manifest))
    return "\n\n".join(sections)


def render_report_json(manifest: dict, spans: List[dict]) -> str:
    """Machine-readable report: one JSON document, stable key order."""
    return json.dumps(
        {"manifest": manifest, "spans": spans}, sort_keys=True, indent=2
    )
