"""Session lifecycle: the one mutable switch the instrumentation reads.

A :class:`TelemetrySession` bundles a :class:`~repro.telemetry.metrics.
MetricsRegistry`, a :class:`~repro.telemetry.tracer.Tracer` and a
:class:`~repro.telemetry.manifest.RunManifest` for a single run.  The
module keeps at most one active session in ``_ACTIVE``; instrumented
code asks :func:`active` (returns the session or ``None``) and guards
with a single ``is not None`` check, or calls the module-level
:func:`count` / :func:`observe` / :func:`set_gauge` / :func:`span`
helpers, which are no-ops when disabled.

The disabled path is deliberately trivial — one global load and one
``None`` comparison — so leaving instrumentation in hot loops costs
nothing measurable (see ``tests/telemetry/test_session.py`` for the
benchmark).  Telemetry is an *execution knob*: enabling it must never
change experiment bytes, fingerprints or RNG streams.

Telemetry is parent-process-only: forked pool workers inherit the
active session but their copies die with the worker.  Worker-side
costs are observed from the parent (chunk turnaround spans recorded by
:class:`repro.runtime.runner.ParallelRunner`).
"""

from __future__ import annotations

import contextlib
import os
from typing import Any, Iterator, Optional, Sequence

from .context import TraceIdAllocator, derive_trace_seed
from .manifest import RunManifest
from .metrics import MetricsRegistry
from .tracer import Tracer

__all__ = [
    "TelemetrySession", "enable", "disable", "active",
    "count", "observe", "set_gauge", "span", "capture",
]


class TelemetrySession:
    """Registry + tracer + manifest for one instrumented run."""

    def __init__(
        self,
        command: str = "adhoc",
        argv: Sequence[str] = (),
        config: Optional[dict] = None,
        seed: Optional[int] = None,
        reservoir_size: int = 1024,
    ) -> None:
        self.registry = MetricsRegistry(
            seed=seed or 0, reservoir_size=reservoir_size
        )
        self.tracer = Tracer()
        self.manifest = RunManifest.begin(
            command, argv=argv, config=config, seed=seed
        )
        self.trace_ids = TraceIdAllocator(
            seed=derive_trace_seed(command, seed)
        )
        self._finalized = False

    # write paths ------------------------------------------------------
    def count(self, name: str, n: float = 1) -> None:
        self.registry.count(name, n)

    def observe(self, name: str, value: float) -> None:
        self.registry.observe(name, value)

    def set_gauge(self, name: str, value: float) -> None:
        self.registry.set_gauge(name, value)

    def span(self, name: str, **attrs: Any):
        return self.tracer.span(name, **attrs)

    def new_trace_id(self) -> str:
        """Mint the next deterministic trace id (counter, never RNG)."""
        return self.trace_ids.new_trace_id()

    # lifecycle --------------------------------------------------------
    def finalize(self) -> RunManifest:
        """Close the manifest with the final metrics snapshot (idempotent)."""
        if not self._finalized:
            self.manifest.finish(metrics=self.registry.snapshot())
            self._finalized = True
        return self.manifest

    def save(self, directory: str) -> dict:
        """Persist ``manifest.json`` + ``spans.jsonl`` under ``directory``.

        Both files go through the artifact store's atomic-write path so
        an interrupted save never leaves torn telemetry.  Returns the
        paths written.
        """
        from ..store.atomic import atomic_write_bytes, atomic_write_json

        self.finalize()
        os.makedirs(directory, exist_ok=True)
        manifest_path = os.path.join(directory, "manifest.json")
        spans_path = os.path.join(directory, "spans.jsonl")
        atomic_write_json(manifest_path, self.manifest.to_dict())
        atomic_write_bytes(spans_path, self.tracer.to_jsonl())
        return {"manifest": manifest_path, "spans": spans_path}


# ----------------------------------------------------------------------
# module-level switch

_ACTIVE: Optional[TelemetrySession] = None


class _NullSpan:
    """Stateless context manager returned by :func:`span` when disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def enable(session: Optional[TelemetrySession] = None,
           **kwargs: Any) -> TelemetrySession:
    """Install ``session`` (or a fresh one built from ``kwargs``) as the
    active session and return it."""
    global _ACTIVE
    if session is None:
        session = TelemetrySession(**kwargs)
    _ACTIVE = session
    return session


def disable() -> Optional[TelemetrySession]:
    """Deactivate and return the previously active session, if any."""
    global _ACTIVE
    session, _ACTIVE = _ACTIVE, None
    return session


def active() -> Optional[TelemetrySession]:
    """The active session, or ``None`` — the hot-path guard."""
    return _ACTIVE


# no-op-when-disabled conveniences -------------------------------------

def count(name: str, n: float = 1) -> None:
    if _ACTIVE is not None:
        _ACTIVE.count(name, n)


def observe(name: str, value: float) -> None:
    if _ACTIVE is not None:
        _ACTIVE.observe(name, value)


def set_gauge(name: str, value: float) -> None:
    if _ACTIVE is not None:
        _ACTIVE.set_gauge(name, value)


def span(name: str, **attrs: Any):
    if _ACTIVE is not None:
        return _ACTIVE.span(name, **attrs)
    return _NULL_SPAN


@contextlib.contextmanager
def capture(**kwargs: Any) -> Iterator[TelemetrySession]:
    """Enable a fresh session for the block, restoring the previous
    active session afterwards.  Test-suite convenience."""
    global _ACTIVE
    previous = _ACTIVE
    session = TelemetrySession(**kwargs)
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = previous
