"""Nested spans with monotonic wall/CPU timings, serialised as JSONL.

A :class:`Tracer` hands out spans two ways:

* :meth:`Tracer.span` — a context manager for code the caller wraps
  inline (``with tracer.span("fig7.sigma_column", sigma=0.1): ...``);
  nesting follows the ``with`` structure.
* :meth:`Tracer.record_span` — for intervals timed elsewhere (e.g. the
  parent-side turnaround of a worker-pool chunk, whose start/end the
  runner observed around a future).  The recorded span is parented to
  whatever inline span is open at record time.

Spans appear in ``spans`` in creation order, children strictly after
their parent, so a single forward pass over the list renders the tree.
Durations come from :func:`repro.telemetry.clock.perf` and CPU cost
from :func:`repro.telemetry.clock.cpu`.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
from typing import Any, Dict, Iterator, List, Optional

from ..units import MILLI
from . import clock, context

__all__ = ["Span", "Tracer"]


@dataclasses.dataclass
class Span:
    """One timed interval in the span tree.

    Attributes
    ----------
    span_id / parent_id / depth:
        Tree structure; ``parent_id`` is ``None`` for roots.
    name:
        Dotted lowercase identifier (``campaign.trial_group``).
    attrs:
        JSON-serialisable labels (sigma, chunk index, ...).
    start_wall:
        Epoch seconds at start (cross-run correlation only; durations
        never use it).
    duration_s / cpu_s:
        Filled when the span closes; ``cpu_s`` is ``None`` for
        externally timed spans (the CPU burn happened in a worker).
    status:
        ``"ok"``, or ``"error"`` when the wrapped block raised.
    trace_id:
        Identity of the logical trace this span belongs to (see
        :mod:`repro.telemetry.context`); ``None`` for spans recorded
        outside any trace scope.
    """

    span_id: int
    parent_id: Optional[int]
    depth: int
    name: str
    attrs: Dict[str, Any]
    start_wall: float
    duration_s: Optional[float] = None
    cpu_s: Optional[float] = None
    status: str = "ok"
    trace_id: Optional[str] = None

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class Tracer:
    """Collects a span tree for one run."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        # start timings of spans opened via start_span, keyed by span_id
        self._explicit: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def _open(self, name: str, attrs: Dict[str, Any],
              parent: Optional[Span] = None,
              trace_id: Optional[str] = None) -> Span:
        if parent is None and self._stack:
            parent = self._stack[-1]
        if trace_id is None:
            trace_id = context.current_trace_id()
        span = Span(
            span_id=len(self.spans),
            parent_id=parent.span_id if parent is not None else None,
            depth=parent.depth + 1 if parent is not None else 0,
            name=name,
            attrs=attrs,
            start_wall=clock.wall(),
            trace_id=trace_id,
        )
        self.spans.append(span)
        return span

    @property
    def current_span(self) -> Optional[Span]:
        """The innermost open inline span, if any."""
        return self._stack[-1] if self._stack else None

    @contextlib.contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Time a block as a child of the innermost open span."""
        span = self._open(name, attrs)
        self._stack.append(span)
        start_perf = clock.perf()
        start_cpu = clock.cpu()
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            span.duration_s = clock.perf() - start_perf
            span.cpu_s = clock.cpu() - start_cpu
            self._stack.pop()

    def record_span(self, name: str, start_perf: float, end_perf: float,
                    *, parent: Optional[Span] = None,
                    trace_id: Optional[str] = None,
                    status: str = "ok", **attrs: Any) -> Span:
        """Record an interval timed by the caller (both endpoints from
        :func:`clock.perf`), parented to the innermost open span unless
        an explicit ``parent`` span is given."""
        span = self._open(name, attrs, parent=parent, trace_id=trace_id)
        # Back-date the wall timestamp from the perf interval.
        span.start_wall = clock.wall() - (clock.perf() - start_perf)
        span.duration_s = end_perf - start_perf
        span.status = status
        return span

    def start_span(self, name: str, *, parent: Optional[Span] = None,
                   trace_id: Optional[str] = None, **attrs: Any) -> Span:
        """Open a span without pushing it on the inline stack.

        For intervals whose begin and end live in different callbacks
        (an HTTP request awaiting the batcher, say) where a ``with``
        block cannot bracket the work.  Close with :meth:`end_span`;
        ``cpu_s`` stays ``None`` — between the endpoints the process
        ran unrelated work, so a CPU delta would lie.
        """
        span = self._open(name, attrs, parent=parent, trace_id=trace_id)
        self._explicit[span.span_id] = clock.perf()
        return span

    def end_span(self, span: Span, status: str = "ok") -> Span:
        """Close a span opened with :meth:`start_span` (idempotent)."""
        start_perf = self._explicit.pop(span.span_id, None)
        if start_perf is not None:
            span.duration_s = clock.perf() - start_perf
            span.status = status
        return span

    def graft_records(self, records: List[dict],
                      parent: Span) -> List[Span]:
        """Stitch serialized spans from another process under ``parent``.

        ``records`` is a list of :meth:`Span.to_dict` documents in
        creation order (parents before children), as shipped back from
        a pool worker.  Ids are re-issued from this tracer's sequence,
        intra-batch parent links are remapped, roots of the shipped
        forest become children of ``parent``, and spans missing a
        trace id inherit the parent's — yielding one contiguous
        cross-process trace.
        """
        grafted: List[Span] = []
        id_map: Dict[int, Span] = {}
        for record in records:
            old_parent = record.get("parent_id")
            anchor = id_map.get(old_parent, parent)
            span = Span(
                span_id=len(self.spans),
                parent_id=anchor.span_id,
                depth=anchor.depth + 1,
                name=record["name"],
                attrs=dict(record.get("attrs") or {}),
                start_wall=record.get("start_wall", 0.0),
                duration_s=record.get("duration_s"),
                cpu_s=record.get("cpu_s"),
                status=record.get("status", "ok"),
                trace_id=record.get("trace_id") or parent.trace_id,
            )
            self.spans.append(span)
            id_map[record["span_id"]] = span
            grafted.append(span)
        return grafted

    # ------------------------------------------------------------------
    def to_records(self) -> List[dict]:
        return [span.to_dict() for span in self.spans]

    def to_jsonl(self) -> bytes:
        """One JSON document per span, creation order."""
        lines = [json.dumps(record, sort_keys=True)
                 for record in self.to_records()]
        return ("\n".join(lines) + "\n").encode() if lines else b""

    def render_tree(self) -> str:
        """Indented text rendering of the span tree."""
        if not self.spans:
            return "(no spans recorded)"
        lines = []
        for span in self.spans:
            duration = ("...open" if span.duration_s is None
                        else f"{span.duration_s / MILLI:.1f} ms")
            cpu = (f" cpu {span.cpu_s / MILLI:.1f} ms"
                   if span.cpu_s is not None else "")
            attrs = "".join(
                f" {key}={value}" for key, value in sorted(span.attrs.items())
            )
            flag = "" if span.status == "ok" else f" [{span.status}]"
            lines.append(
                f"{'  ' * span.depth}{span.name}  {duration}{cpu}{attrs}{flag}"
            )
        return "\n".join(lines)
