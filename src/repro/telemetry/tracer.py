"""Nested spans with monotonic wall/CPU timings, serialised as JSONL.

A :class:`Tracer` hands out spans two ways:

* :meth:`Tracer.span` — a context manager for code the caller wraps
  inline (``with tracer.span("fig7.sigma_column", sigma=0.1): ...``);
  nesting follows the ``with`` structure.
* :meth:`Tracer.record_span` — for intervals timed elsewhere (e.g. the
  parent-side turnaround of a worker-pool chunk, whose start/end the
  runner observed around a future).  The recorded span is parented to
  whatever inline span is open at record time.

Spans appear in ``spans`` in creation order, children strictly after
their parent, so a single forward pass over the list renders the tree.
Durations come from :func:`repro.telemetry.clock.perf` and CPU cost
from :func:`repro.telemetry.clock.cpu`.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
from typing import Any, Dict, Iterator, List, Optional

from ..units import MILLI
from . import clock

__all__ = ["Span", "Tracer"]


@dataclasses.dataclass
class Span:
    """One timed interval in the span tree.

    Attributes
    ----------
    span_id / parent_id / depth:
        Tree structure; ``parent_id`` is ``None`` for roots.
    name:
        Dotted lowercase identifier (``campaign.trial_group``).
    attrs:
        JSON-serialisable labels (sigma, chunk index, ...).
    start_wall:
        Epoch seconds at start (cross-run correlation only; durations
        never use it).
    duration_s / cpu_s:
        Filled when the span closes; ``cpu_s`` is ``None`` for
        externally timed spans (the CPU burn happened in a worker).
    status:
        ``"ok"``, or ``"error"`` when the wrapped block raised.
    """

    span_id: int
    parent_id: Optional[int]
    depth: int
    name: str
    attrs: Dict[str, Any]
    start_wall: float
    duration_s: Optional[float] = None
    cpu_s: Optional[float] = None
    status: str = "ok"

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class Tracer:
    """Collects a span tree for one run."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._stack: List[Span] = []

    # ------------------------------------------------------------------
    def _open(self, name: str, attrs: Dict[str, Any]) -> Span:
        span = Span(
            span_id=len(self.spans),
            parent_id=self._stack[-1].span_id if self._stack else None,
            depth=len(self._stack),
            name=name,
            attrs=attrs,
            start_wall=clock.wall(),
        )
        self.spans.append(span)
        return span

    @contextlib.contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Time a block as a child of the innermost open span."""
        span = self._open(name, attrs)
        self._stack.append(span)
        start_perf = clock.perf()
        start_cpu = clock.cpu()
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            span.duration_s = clock.perf() - start_perf
            span.cpu_s = clock.cpu() - start_cpu
            self._stack.pop()

    def record_span(self, name: str, start_perf: float, end_perf: float,
                    **attrs: Any) -> Span:
        """Record an interval timed by the caller (both endpoints from
        :func:`clock.perf`), parented to the innermost open span."""
        span = self._open(name, attrs)
        # Back-date the wall timestamp from the perf interval.
        span.start_wall = clock.wall() - (clock.perf() - start_perf)
        span.duration_s = end_perf - start_perf
        return span

    # ------------------------------------------------------------------
    def to_records(self) -> List[dict]:
        return [span.to_dict() for span in self.spans]

    def to_jsonl(self) -> bytes:
        """One JSON document per span, creation order."""
        lines = [json.dumps(record, sort_keys=True)
                 for record in self.to_records()]
        return ("\n".join(lines) + "\n").encode() if lines else b""

    def render_tree(self) -> str:
        """Indented text rendering of the span tree."""
        if not self.spans:
            return "(no spans recorded)"
        lines = []
        for span in self.spans:
            duration = ("...open" if span.duration_s is None
                        else f"{span.duration_s / MILLI:.1f} ms")
            cpu = (f" cpu {span.cpu_s / MILLI:.1f} ms"
                   if span.cpu_s is not None else "")
            attrs = "".join(
                f" {key}={value}" for key, value in sorted(span.attrs.items())
            )
            flag = "" if span.status == "ok" else f" [{span.status}]"
            lines.append(
                f"{'  ' * span.depth}{span.name}  {duration}{cpu}{attrs}{flag}"
            )
        return "\n".join(lines)
