"""SI unit constants and engineering-notation helpers.

All quantities inside the library are plain floats (or numpy arrays) in
base SI units: seconds, volts, amperes, ohms, siemens, farads, watts,
joules and square metres.  The constants below make parameter definitions
read like a datasheet::

    C_COG = 100 * FEMTO    # 100 fF
    SLICE = 100 * NANO     # 100 ns
    R_GD = 100 * KILO      # 100 kΩ

:func:`si_format` renders a value back into engineering notation for
reports and benchmark tables.
"""

from __future__ import annotations

import math

#: SI prefixes as multipliers.
YOCTO = 1e-24
ZEPTO = 1e-21
ATTO = 1e-18
FEMTO = 1e-15
PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
]


def si_format(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` in engineering notation with an SI prefix.

    Parameters
    ----------
    value:
        The quantity in base SI units.
    unit:
        Unit symbol appended after the prefix (e.g. ``"F"``, ``"s"``).
    digits:
        Number of significant digits.

    Examples
    --------
    >>> si_format(1e-13, "F")
    '100 fF'
    >>> si_format(2.5e-3, "S")
    '2.5 mS'
    >>> si_format(0.0, "W")
    '0 W'
    """
    if value == 0 or not math.isfinite(value):
        return f"{value:g} {unit}".rstrip()
    magnitude = abs(value)
    for scale, prefix in _PREFIXES:
        if magnitude >= scale:
            scaled = value / scale
            text = f"{scaled:.{digits}g}"
            return f"{text} {prefix}{unit}".rstrip()
    scale, prefix = _PREFIXES[-1]
    scaled = value / scale
    return f"{scaled:.{digits}g} {prefix}{unit}".rstrip()


def db(ratio: float) -> float:
    """Convert a power ratio to decibels."""
    if ratio <= 0:
        raise ValueError(f"dB undefined for non-positive ratio {ratio!r}")
    return 10.0 * math.log10(ratio)


def from_db(decibels: float) -> float:
    """Convert decibels back to a power ratio."""
    return 10.0 ** (decibels / 10.0)


def parallel(*resistances: float) -> float:
    """Equivalent resistance of resistors in parallel.

    >>> parallel(10e3, 10e3)
    5000.0
    """
    if not resistances:
        raise ValueError("parallel() requires at least one resistance")
    total_conductance = 0.0
    for r in resistances:
        if r <= 0:
            raise ValueError(f"resistance must be positive, got {r!r}")
        total_conductance += 1.0 / r
    return 1.0 / total_conductance


def conductance(resistance: float) -> float:
    """Convert a resistance in ohms to a conductance in siemens."""
    if resistance <= 0:
        raise ValueError(f"resistance must be positive, got {resistance!r}")
    return 1.0 / resistance


def resistance(g: float) -> float:
    """Convert a conductance in siemens to a resistance in ohms."""
    if g <= 0:
        raise ValueError(f"conductance must be positive, got {g!r}")
    return 1.0 / g
