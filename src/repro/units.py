"""SI unit constants and engineering-notation helpers.

All quantities inside the library are plain floats (or numpy arrays) in
base SI units: seconds, volts, amperes, ohms, siemens, farads, watts,
joules and square metres.  The constants below make parameter definitions
read like a datasheet::

    C_COG = 100 * FEMTO    # 100 fF
    SLICE = 100 * NANO     # 100 ns
    R_GD = 100 * KILO      # 100 kΩ

:func:`si_format` renders a value back into engineering notation for
reports and benchmark tables.
"""

from __future__ import annotations

import math

from .errors import ConfigurationError

#: SI prefixes as multipliers.
YOCTO = 1e-24
ZEPTO = 1e-21
ATTO = 1e-18
FEMTO = 1e-15
PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
]


def si_format(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` in engineering notation with an SI prefix.

    Parameters
    ----------
    value:
        The quantity in base SI units.
    unit:
        Unit symbol appended after the prefix (e.g. ``"F"``, ``"s"``).
    digits:
        Number of significant digits.

    Examples
    --------
    >>> si_format(1e-13, "F")
    '100 fF'
    >>> si_format(2.5e-3, "S")
    '2.5 mS'
    >>> si_format(0.0, "W")
    '0 W'

    Values outside the prefix table (below atto or at/above 1000 tera
    after rounding) fall back to plain scientific notation, and a value
    that *rounds* across a prefix boundary is promoted to the larger
    prefix (``999.96e-9 s`` at 4 digits renders ``1 us``, not
    ``1000 ns``).
    """
    if value == 0 or not math.isfinite(value):
        return f"{value:g} {unit}".rstrip()
    magnitude = abs(value)
    for index, (scale, prefix) in enumerate(_PREFIXES):
        if magnitude >= scale:
            text = f"{value / scale:.{digits}g}"
            if abs(float(text)) >= 1000:
                if index == 0:  # no larger prefix: plain scientific
                    break
                scale, prefix = _PREFIXES[index - 1]
                text = f"{value / scale:.{digits}g}"
            if "e" in text:  # few digits of a >=100 value: re-render
                text = f"{float(text):g}"
            return f"{text} {prefix}{unit}".rstrip()
    # sub-atto or supra-tera: no prefix represents this cleanly
    return f"{value:.{digits}g} {unit}".rstrip()


def db(ratio: float) -> float:
    """Convert a power ratio to decibels."""
    if ratio <= 0:
        raise ConfigurationError(f"dB undefined for non-positive ratio {ratio!r}")
    return 10.0 * math.log10(ratio)


def from_db(decibels: float) -> float:
    """Convert decibels back to a power ratio."""
    return 10.0 ** (decibels / 10.0)


def parallel(*resistances: float) -> float:
    """Equivalent resistance of resistors in parallel.

    >>> parallel(10e3, 10e3)
    5000.0
    """
    if not resistances:
        raise ConfigurationError("parallel() requires at least one resistance")
    total_conductance = 0.0
    for r in resistances:
        if r <= 0:
            raise ConfigurationError(f"resistance must be positive, got {r!r}")
        total_conductance += 1.0 / r
    return 1.0 / total_conductance


def conductance(resistance: float) -> float:
    """Convert a resistance in ohms to a conductance in siemens."""
    if resistance <= 0:
        raise ConfigurationError(f"resistance must be positive, got {resistance!r}")
    return 1.0 / resistance


def resistance(g: float) -> float:
    """Convert a conductance in siemens to a resistance in ohms."""
    if g <= 0:
        raise ConfigurationError(f"conductance must be positive, got {g!r}")
    return 1.0 / g
