"""Fitting, metrics, sweep and table utilities."""

import numpy as np
import pytest

from repro.analysis import (
    SweepResult,
    accuracy_score,
    fit_linear,
    fit_polynomial,
    max_relative_error,
    mean_relative_error,
    r_squared,
    render_table,
    rmse,
    sweep,
)
from repro.errors import ConfigurationError, ShapeError


class TestFitting:
    def test_exact_line(self):
        x = np.linspace(0, 1, 20)
        fit = fit_linear(x, 3.0 * x + 2.0)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(2.0)
        assert fit.r2 == pytest.approx(1.0)

    def test_through_origin(self):
        x = np.linspace(0.1, 1, 10)
        fit = fit_linear(x, 4.0 * x, through_origin=True)
        assert fit.slope == pytest.approx(4.0)
        assert fit.intercept == pytest.approx(0.0)

    def test_predict(self):
        fit = fit_linear(np.array([0.0, 1.0]), np.array([1.0, 3.0]))
        assert fit.predict(np.array([2.0]))[0] == pytest.approx(5.0)

    def test_noisy_r2_below_one(self, rng):
        x = np.linspace(0, 1, 200)
        y = x + rng.normal(0, 0.3, 200)
        fit = fit_linear(x, y)
        assert 0.0 < fit.r2 < 1.0

    def test_r_squared_constant_target(self):
        y = np.ones(5)
        assert r_squared(y, y) == pytest.approx(1.0)

    def test_polynomial(self):
        x = np.linspace(-1, 1, 30)
        coeffs = fit_polynomial(x, 2 * x**2 + 1, degree=2)
        assert coeffs[0] == pytest.approx(2.0, abs=1e-8)

    def test_validation(self):
        with pytest.raises(ShapeError):
            fit_linear(np.zeros(1), np.zeros(1))
        with pytest.raises(ShapeError):
            fit_linear(np.zeros(3), np.zeros(4))
        with pytest.raises(ShapeError):
            fit_linear(np.zeros(3), np.zeros(3), through_origin=True)
        with pytest.raises(ShapeError):
            fit_polynomial(np.arange(3.0), np.arange(3.0), degree=5)


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(2 / 3)

    def test_rmse(self):
        assert rmse(np.array([1.0, 3.0]), np.array([0.0, 3.0])) == pytest.approx(
            np.sqrt(0.5)
        )

    def test_relative_errors(self):
        actual = np.array([1.1, 2.0])
        ref = np.array([1.0, 2.0])
        assert mean_relative_error(actual, ref) == pytest.approx(0.05)
        assert max_relative_error(actual, ref) == pytest.approx(0.1)

    def test_shape_checked(self):
        with pytest.raises(ShapeError):
            rmse(np.zeros(2), np.zeros(3))


class TestSweep:
    def test_collects_measurements(self):
        result = sweep("x", [1, 2, 3], lambda v: {"sq": v * v, "neg": -v})
        assert result.series("sq").tolist() == pytest.approx([1.0, 4.0, 9.0])
        assert result.keys() == ["neg", "sq"]

    def test_as_rows(self):
        result = sweep("x", [2], lambda v: {"a": v})
        assert result.as_rows() == [[2, 2]]

    def test_unknown_key(self):
        result = sweep("x", [1], lambda v: {"a": v})
        with pytest.raises(ConfigurationError):
            result.series("b")

    def test_inconsistent_keys_rejected(self):
        def measure(v):
            return {"a": v} if v == 1 else {"b": v}

        with pytest.raises(ConfigurationError):
            sweep("x", [1, 2], measure)

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep("x", [], lambda v: {"a": v})

    def test_bad_measurement_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep("x", [1], lambda v: None)


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "v"], [["a", 1.5], ["long-name", 2]])
        lines = text.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_title(self):
        text = render_table(["a"], [[1]], title="My Table")
        assert text.startswith("My Table")

    def test_float_formatting(self):
        text = render_table(["x"], [[1.23456e-7]])
        assert "1.235e-07" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            render_table([], [])
        with pytest.raises(ConfigurationError):
            render_table(["a"], [[1, 2]])
