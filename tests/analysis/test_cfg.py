"""Golden CFG-shape tests for the dataflow engine's graph builder.

Each case asserts the exact labelled edge set of a small function —
the shapes the deep rules lean on hardest: ``try/finally`` exit
duplication, ``while/else`` exhaustion vs ``break``, nested ``with``,
and exception-edge reachability through catch-all vs narrow handlers.
"""

import ast
import textwrap

import pytest

from repro.analysis.dataflow import CFG, build_cfg
from repro.errors import ConfigurationError


def cfg_of(code: str, raise_policy: str = "explicit") -> CFG:
    tree = ast.parse(textwrap.dedent(code))
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func, raise_policy=raise_policy)


class TestFinallyDuplication:
    def test_return_in_both_arms(self):
        cfg = cfg_of(
            """\
            def f():
                try:
                    return 1
                finally:
                    return 2
            """
        )
        # The try-arm return traverses its own copy of the finally
        # body; that copy's return wins and reaches exit.  No normal
        # fall-through path exists at all.
        assert cfg.edges() == [
            ("entry", "next", "return@3"),
            ("return@3", "return", "return@5"),
            ("return@5", "return", "exit"),
        ]

    def test_normal_and_return_exits_get_separate_finally_copies(self):
        cfg = cfg_of(
            """\
            def f(x):
                try:
                    if x:
                        return 1
                    y = 2
                finally:
                    cleanup()
                return y
            """
        )
        edges = cfg.edges()
        # return path: through a finally copy, then straight to exit
        assert ("return@4", "return", "expr@7") in edges
        assert ("expr@7", "return", "exit") in edges
        # fall-through path: through a finally copy, then return y
        assert ("assign@5", "next", "expr@7") in edges
        assert ("expr@7", "next", "return@8") in edges
        assert ("return@8", "return", "exit") in edges

    def test_raise_routes_through_finally_to_raise_exit(self):
        cfg = cfg_of(
            """\
            def f():
                try:
                    raise ValueError("boom")
                finally:
                    cleanup()
            """
        )
        edges = cfg.edges()
        assert ("raise@3", "exc", "expr@5") in edges
        assert ("expr@5", "exc", "raise-exit") in edges
        # no path from the raise to the ordinary exit
        raise_node = next(n.index for n in cfg.nodes
                          if n.label == "raise@3")
        assert cfg.exit not in cfg.reachable(raise_node)


class TestWhileElse:
    def test_exhaustion_runs_else_break_skips_it(self):
        cfg = cfg_of(
            """\
            def f(x):
                while x:
                    if x > 9:
                        break
                    x = x + 1
                else:
                    x = -1
                return x
            """
        )
        edges = cfg.edges()
        # exhaustion (false edge) enters the else arm
        assert ("while@2", "false", "assign@7") in edges
        assert ("assign@7", "next", "return@8") in edges
        # break jumps past the else arm
        assert ("break@4", "break", "return@8") in edges
        assert ("break@4", "break", "assign@7") not in edges
        # loop back-edges
        assert ("while@2", "true", "if@3") in edges
        assert ("assign@5", "next", "while@2") in edges

    def test_continue_returns_to_header(self):
        cfg = cfg_of(
            """\
            def f(xs):
                for x in xs:
                    if x:
                        continue
                    use(x)
            """
        )
        edges = cfg.edges()
        assert ("continue@4", "continue", "for@2") in edges
        assert ("expr@5", "next", "for@2") in edges
        assert ("for@2", "false", "exit") in edges


class TestNestedWith:
    def test_bodies_nest_linearly(self):
        cfg = cfg_of(
            """\
            def f(p, q):
                with open(p) as a:
                    with open(q) as b:
                        a.read()
                return 1
            """
        )
        assert cfg.edges() == [
            ("entry", "next", "with@2"),
            ("expr@4", "next", "return@5"),
            ("return@5", "return", "exit"),
            ("with@2", "next", "with@3"),
            ("with@3", "next", "expr@4"),
        ]

    def test_async_with_gets_exception_edge(self):
        cfg = cfg_of(
            """\
            async def f(ctx):
                async with ctx as c:
                    use(c)
            """
        )
        assert ("asyncwith@2", "exc", "raise-exit") in cfg.edges()


class TestExceptionEdges:
    def test_await_reaches_narrow_handler_and_raise_exit(self):
        cfg = cfg_of(
            """\
            async def f(x):
                try:
                    await g(x)
                except ValueError:
                    h()
                return x
            """
        )
        edges = cfg.edges()
        # the await may raise: edge to the handler AND, because the
        # handler is narrow, onward to raise-exit
        assert ("expr@3", "exc", "except:ValueError@4") in edges
        assert ("expr@3", "exc", "raise-exit") in edges
        assert cfg.raise_exit in cfg.reachable()

    def test_catch_all_stops_propagation(self):
        cfg = cfg_of(
            """\
            async def f(x):
                try:
                    await g(x)
                except Exception:
                    h()
                return x
            """
        )
        edges = cfg.edges()
        assert ("expr@3", "exc", "except:Exception@4") in edges
        assert cfg.raise_exit not in cfg.reachable()

    def test_plain_calls_are_total_under_explicit_policy(self):
        cfg = cfg_of(
            """\
            def f(x):
                g(x)
                return x
            """
        )
        assert cfg.raise_exit not in cfg.reachable()

    def test_calls_policy_is_pessimistic(self):
        cfg = cfg_of(
            """\
            def f(x):
                g(x)
                return x
            """,
            raise_policy="calls",
        )
        assert cfg.raise_exit in cfg.reachable()

    def test_handler_exceptions_skip_own_try(self):
        cfg = cfg_of(
            """\
            def f(x):
                try:
                    raise ValueError(x)
                except ValueError:
                    raise KeyError(x)
            """
        )
        edges = cfg.edges()
        # the handler's raise goes straight to raise-exit, never back
        # into this try's handler list
        assert ("raise@5", "exc", "raise-exit") in edges
        assert ("raise@5", "exc", "except:ValueError@4") not in edges

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            cfg_of("def f():\n    pass\n", raise_policy="bogus")


class TestPathQueries:
    def test_avoid_set_blocks_paths(self):
        cfg = cfg_of(
            """\
            def f(x):
                if x:
                    a()
                else:
                    b()
                return x
            """
        )
        a_node = next(n.index for n in cfg.nodes if n.label == "expr@3")
        b_node = next(n.index for n in cfg.nodes if n.label == "expr@5")
        assert cfg.exit in cfg.reachable(avoid={a_node})
        assert cfg.exit not in cfg.reachable(avoid={a_node, b_node})
