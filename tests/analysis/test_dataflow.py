"""Unit tests for the dataflow engine's symbol table, call graph and
reaching-definitions pass (the layers under the deep lint rules)."""

import ast
import textwrap

from repro.analysis.dataflow import (
    ProjectSymbols,
    ReachingDefinitions,
    build_call_graph,
    build_cfg,
    module_name_for_path,
)


def project(*modules):
    """Build symbols + call graph from ``(path, source)`` pairs."""
    parsed = [(path, ast.parse(textwrap.dedent(src)))
              for path, src in modules]
    symbols = ProjectSymbols.build(parsed)
    return symbols, build_call_graph(symbols)


class TestModuleNames:
    def test_src_prefix_stripped(self):
        assert (module_name_for_path("src/repro/serving/batcher.py")
                == "repro.serving.batcher")

    def test_tests_keep_their_prefix(self):
        assert (module_name_for_path("tests/analysis/test_cfg.py")
                == "tests.analysis.test_cfg")

    def test_init_names_the_package(self):
        assert module_name_for_path("src/repro/__init__.py") == "repro"


class TestSymbols:
    def test_relative_import_resolution(self):
        symbols, _ = project(
            ("src/repro/pkg/a.py", "from .b import helper\n"),
            ("src/repro/pkg/b.py", "def helper():\n    return 1\n"),
        )
        info = symbols.modules["repro.pkg.a"]
        assert info.imports["helper"] == "repro.pkg.b.helper"

    def test_attr_types_from_tracked_constructors(self):
        symbols, _ = project(
            (
                "src/repro/pkg/c.py",
                """
                import threading

                class Guarded:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._data = {}
                """,
            ),
        )
        cls = symbols.classes["repro.pkg.c.Guarded"]
        assert cls.attr_types == {"_lock": "threading.Lock"}

    def test_same_module_class_attr_qualified(self):
        symbols, _ = project(
            (
                "src/repro/pkg/d.py",
                """
                class Inner:
                    def ping(self):
                        return 1

                class Outer:
                    def __init__(self):
                        self.inner = Inner()
                """,
            ),
        )
        cls = symbols.classes["repro.pkg.d.Outer"]
        assert cls.attr_types["inner"] == "repro.pkg.d.Inner"

    def test_unique_function_rejects_ambiguity(self):
        symbols, _ = project(
            ("src/repro/pkg/e.py", "def solo():\n    return 1\n"),
            (
                "src/repro/pkg/f.py",
                "def dup():\n    return 1\n",
            ),
            (
                "src/repro/pkg/g.py",
                "def dup():\n    return 2\n",
            ),
        )
        assert symbols.unique_function("solo") is not None
        assert symbols.unique_function("dup") is None
        assert symbols.unique_function("absent") is None


class TestCallGraph:
    def test_same_module_and_self_method_edges(self):
        _, graph = project(
            (
                "src/repro/pkg/h.py",
                """
                class Engine:
                    def run(self):
                        return self.step()

                    def step(self):
                        return helper()

                def helper():
                    return 1
                """,
            ),
        )
        assert graph.edges_from("repro.pkg.h.Engine.run") == [
            "repro.pkg.h.Engine.step"
        ]
        assert graph.edges_from("repro.pkg.h.Engine.step") == [
            "repro.pkg.h.helper"
        ]

    def test_cross_module_edge_through_imports(self):
        _, graph = project(
            (
                "src/repro/pkg/i.py",
                "from .j import work\n\ndef go():\n    return work()\n",
            ),
            ("src/repro/pkg/j.py", "def work():\n    return 1\n"),
        )
        assert graph.edges_from("repro.pkg.i.go") == ["repro.pkg.j.work"]

    def test_external_calls_recorded_not_edges(self):
        _, graph = project(
            (
                "src/repro/pkg/k.py",
                "import time\n\ndef nap():\n    time.sleep(1)\n",
            ),
        )
        sites = graph.sites["repro.pkg.k.nap"]
        assert [s.external for s in sites] == ["time.sleep"]
        assert graph.edges_from("repro.pkg.k.nap") == []

    def test_typed_receiver_resolves_method(self):
        _, graph = project(
            (
                "src/repro/pkg/m.py",
                """
                class Worker:
                    def poke(self):
                        return 1

                class Holder:
                    def __init__(self):
                        self.worker = Worker()

                    def use(self):
                        return self.worker.poke()
                """,
            ),
        )
        assert graph.edges_from("repro.pkg.m.Holder.use") == [
            "repro.pkg.m.Worker.poke"
        ]

    def test_executor_arguments_never_become_edges(self):
        _, graph = project(
            (
                "src/repro/pkg/n.py",
                """
                import asyncio

                async def go():
                    loop = asyncio.get_running_loop()
                    await loop.run_in_executor(None, offloaded)

                def offloaded():
                    return 1
                """,
            ),
        )
        assert "repro.pkg.n.offloaded" not in graph.edges_from(
            "repro.pkg.n.go"
        )

    def test_with_as_binding_types_the_local(self):
        _, graph = project(
            (
                "src/repro/pkg/o.py",
                """
                from concurrent.futures import ProcessPoolExecutor

                def go():
                    with ProcessPoolExecutor() as pool:
                        pool.submit(min, 1, 2)
                """,
            ),
        )
        assert (graph.local_types["repro.pkg.o.go"]["pool"]
                == "concurrent.futures.ProcessPoolExecutor")
        methods = [s.method for s in graph.sites["repro.pkg.o.go"]
                   if s.method is not None]
        assert ("concurrent.futures.ProcessPoolExecutor",
                "submit") in methods

    def test_reachable_from_closes_over_edges(self):
        _, graph = project(
            (
                "src/repro/pkg/p.py",
                """
                def a():
                    return b()

                def b():
                    return c()

                def c():
                    return 1

                def island():
                    return 2
                """,
            ),
        )
        reach = graph.reachable_from(["repro.pkg.p.a"])
        assert "repro.pkg.p.c" in reach
        assert "repro.pkg.p.island" not in reach


class TestReachingDefinitions:
    def _analysis(self, code):
        func = ast.parse(textwrap.dedent(code)).body[0]
        cfg = build_cfg(func)
        return cfg, ReachingDefinitions(cfg, func)

    def test_branch_definitions_both_reach_the_join(self):
        cfg, rd = self._analysis(
            """\
            def f(c):
                if c:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        ret = next(n.index for n in cfg.nodes if n.label == "return@6")
        reaching = rd.reaching(ret, "x")
        labels = {cfg.nodes[idx].label for idx in reaching}
        assert labels == {"assign@3", "assign@5"}

    def test_redefinition_kills_the_old_definition(self):
        cfg, rd = self._analysis(
            """\
            def f():
                x = 1
                x = 2
                return x
            """
        )
        ret = next(n.index for n in cfg.nodes if n.label == "return@4")
        labels = {cfg.nodes[idx].label for idx in rd.reaching(ret, "x")}
        assert labels == {"assign@3"}

    def test_parameters_defined_at_entry(self):
        cfg, rd = self._analysis(
            """\
            def f(x):
                return x
            """
        )
        ret = next(n.index for n in cfg.nodes if n.label == "return@2")
        assert cfg.entry in rd.reaching(ret, "x")

    def test_loop_body_definition_reaches_the_header(self):
        cfg, rd = self._analysis(
            """\
            def f(xs):
                total = 0
                for x in xs:
                    total = total + x
                return total
            """
        )
        ret = next(n.index for n in cfg.nodes if n.label == "return@5")
        labels = {cfg.nodes[idx].label
                  for idx in rd.reaching(ret, "total")}
        assert labels == {"assign@2", "assign@4"}
