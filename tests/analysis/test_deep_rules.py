"""Per-rule fixtures for the project-wide dataflow rules.

Mirrors ``test_lint_rules.py``: every deep rule ships positive
fixtures (the violation fires) and negative fixtures (the sanctioned
idiom stays clean), so a change to the CFG builder, the call graph or
a rule's event model that shifts behaviour fails here first.
"""

import textwrap

from repro.analysis.lint import DEEP_RULE_IDS, RULES, check_source


def run(code, rule_id, **kwargs):
    return check_source(textwrap.dedent(code), rule_id, **kwargs)


class TestDeepRegistry:
    def test_deep_rules_registered(self):
        assert set(RULES) >= set(DEEP_RULE_IDS)

    def test_deep_rules_need_project(self):
        for rule_id in DEEP_RULE_IDS:
            assert RULES[rule_id].needs_project


class TestAsync001:
    def test_flags_blocking_call_in_async_def(self):
        findings = run(
            """
            import time

            async def handler():
                time.sleep(0.5)
            """,
            "ASYNC001",
        )
        assert len(findings) == 1
        assert "time.sleep" in findings[0].message

    def test_flags_blocking_call_transitively_reachable(self):
        findings = run(
            """
            import time

            async def handler():
                do_work()

            def do_work():
                time.sleep(0.1)
            """,
            "ASYNC001",
        )
        assert len(findings) == 1
        assert "time.sleep" in findings[0].message
        assert "handler" in findings[0].message  # provenance

    def test_flags_subprocess_in_async(self):
        findings = run(
            """
            import subprocess

            async def run_tool():
                subprocess.run(["ls"])
            """,
            "ASYNC001",
        )
        assert len(findings) == 1
        assert "subprocess.run" in findings[0].message

    def test_flags_sync_with_on_lock_attribute(self):
        findings = run(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()

                async def get(self, key):
                    with self._lock:
                        return key
            """,
            "ASYNC001",
        )
        assert len(findings) == 1
        assert "threading.Lock" in findings[0].message

    def test_allows_executor_offload(self):
        # run_in_executor args are deliberately not traversed: the
        # callable runs on a worker thread, not the loop.
        findings = run(
            """
            import asyncio
            import time

            async def handler():
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, do_work)

            def do_work():
                time.sleep(0.1)
            """,
            "ASYNC001",
        )
        assert findings == []

    def test_allows_blocking_in_pure_sync_code(self):
        findings = run(
            """
            import time

            def main():
                time.sleep(1.0)
            """,
            "ASYNC001",
        )
        assert findings == []

    def test_sync_only_modules_are_out_of_scope(self):
        findings = run(
            """
            import time

            async def poll():
                time.sleep(1.0)
            """,
            "ASYNC001",
            path="src/repro/serving/client.py",
        )
        assert findings == []


class TestAsync002:
    def test_flags_branch_that_skips_resolution(self):
        findings = run(
            """
            class Batcher:
                def flush(self, batch, ok):
                    if ok:
                        for item in batch:
                            item.future.set_result(1)
            """,
            "ASYNC002",
        )
        assert len(findings) == 1
        assert "'batch'" in findings[0].message

    def test_allows_resolver_call_on_other_branch(self):
        findings = run(
            """
            class Batcher:
                def fail(self, batch, exc):
                    for item in batch:
                        item.future.set_exception(exc)

                def flush(self, batch, ok, exc):
                    if ok:
                        for item in batch:
                            item.future.set_result(1)
                    else:
                        self.fail(batch, exc)
            """,
            "ASYNC002",
        )
        assert findings == []

    def test_flags_leak_through_exception_edge(self):
        findings = run(
            """
            class Batcher:
                async def flush(self, batch):
                    try:
                        rows = await self.compute()
                        for item in batch:
                            item.future.set_result(rows)
                    except Exception:
                        return

                async def compute(self):
                    return []
            """,
            "ASYNC002",
        )
        assert len(findings) == 1
        assert "'batch'" in findings[0].message

    def test_allows_handler_that_fails_the_batch(self):
        findings = run(
            """
            class Batcher:
                def fail(self, batch, exc):
                    for item in batch:
                        item.future.set_exception(exc)

                async def flush(self, batch):
                    try:
                        rows = await self.compute()
                        for item in batch:
                            item.future.set_result(rows)
                    except Exception as exc:
                        self.fail(batch, exc)

                async def compute(self):
                    return []
            """,
            "ASYNC002",
        )
        assert findings == []

    def test_allows_done_guarded_resolution(self):
        findings = run(
            """
            class Batcher:
                def fail(self, batch, exc):
                    for item in batch:
                        if not item.future.done():
                            item.future.set_exception(exc)
            """,
            "ASYNC002",
        )
        assert findings == []

    def test_allows_emptiness_guard(self):
        findings = run(
            """
            class Batcher:
                async def run_once(self, batch):
                    if not batch:
                        return
                    await self.flush(batch)

                async def flush(self, batch):
                    for item in batch:
                        item.future.set_result(1)
            """,
            "ASYNC002",
        )
        assert findings == []

    def test_allows_ownership_transfer_into_container(self):
        findings = run(
            """
            class Router:
                def route(self, item, ok, table, key):
                    if ok:
                        item.set_result(1)
                    else:
                        table[key] = item
            """,
            "ASYNC002",
        )
        assert findings == []

    def test_allows_cancel_as_the_other_path(self):
        findings = run(
            """
            class Router:
                def drop(self, item, ok):
                    if ok:
                        item.set_result(1)
                    else:
                        item.cancel()
            """,
            "ASYNC002",
        )
        assert findings == []

    def test_future_cancel_counts_as_resolution(self):
        findings = run(
            """
            class Batcher:
                def abort(self, batch):
                    for item in batch:
                        if not item.future.done():
                            item.future.cancel()
            """,
            "ASYNC002",
        )
        assert findings == []


class TestConc001:
    def test_flags_bound_method_of_lock_holding_class(self):
        findings = run(
            """
            import threading
            from concurrent.futures import ProcessPoolExecutor

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()

                def step(self, x):
                    with self._lock:
                        return x

                def run_all(self, xs):
                    pool = ProcessPoolExecutor()
                    futs = []
                    for x in xs:
                        futs.append(pool.submit(self.step, x))
                    return futs
            """,
            "CONC001",
        )
        assert len(findings) == 1
        assert "threading.Lock" in findings[0].message

    def test_flags_lambda_capturing_a_lock(self):
        findings = run(
            """
            import threading
            from concurrent.futures import ProcessPoolExecutor

            def run(xs):
                lock = threading.Lock()
                pool = ProcessPoolExecutor()
                futs = []
                for x in xs:
                    futs.append(pool.submit(lambda v: (lock, v), x))
                return futs
            """,
            "CONC001",
        )
        assert len(findings) == 1
        assert "free variable 'lock'" in findings[0].message

    def test_allows_module_level_function(self):
        findings = run(
            """
            from concurrent.futures import ProcessPoolExecutor

            def square(x):
                return x * x

            def run(xs):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(square, xs))
            """,
            "CONC001",
        )
        assert findings == []

    def test_thread_pool_is_not_policed(self):
        # Threads share the address space; nothing is pickled.
        findings = run(
            """
            import threading
            from concurrent.futures import ThreadPoolExecutor

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()

                def step(self, x):
                    return x

                def run_all(self, xs):
                    pool = ThreadPoolExecutor()
                    futs = []
                    for x in xs:
                        futs.append(pool.submit(self.step, x))
                    return futs
            """,
            "CONC001",
        )
        assert findings == []


class TestExc002:
    def test_flags_silent_pass(self):
        findings = run(
            """
            def f():
                try:
                    work()
                except Exception:
                    pass
            """,
            "EXC002",
        )
        assert len(findings) == 1

    def test_flags_stringify_and_move_on(self):
        findings = run(
            """
            def f():
                try:
                    work()
                except Exception as exc:
                    print(exc)
            """,
            "EXC002",
        )
        assert len(findings) == 1

    def test_allows_wrap_into_taxonomy(self):
        findings = run(
            """
            from repro.errors import ExecutionError

            def f():
                try:
                    work()
                except Exception as exc:
                    raise ExecutionError("work failed") from exc
            """,
            "EXC002",
        )
        assert findings == []

    def test_allows_failing_a_waiter_with_the_exception(self):
        findings = run(
            """
            def f(future):
                try:
                    work()
                except Exception as exc:
                    future.set_exception(exc)
            """,
            "EXC002",
        )
        assert findings == []

    def test_allows_storing_the_exception_object(self):
        findings = run(
            """
            def f():
                err = None
                try:
                    work()
                except Exception as exc:
                    err = exc
                return err
            """,
            "EXC002",
        )
        assert findings == []

    def test_narrow_handlers_are_fine(self):
        findings = run(
            """
            def f():
                try:
                    work()
                except ValueError:
                    pass
            """,
            "EXC002",
        )
        assert findings == []

    def test_exemption_comment_suppresses(self):
        findings = run(
            """
            def f():
                try:
                    work()
                # lint: exempt EXC002 demo conversion boundary
                except Exception:
                    pass
            """,
            "EXC002",
        )
        assert findings == []


class TestRes001:
    def test_flags_open_without_with(self):
        findings = run(
            """
            def f(path):
                fh = open(path)
                data = fh.read()
                return data
            """,
            "RES001",
        )
        assert len(findings) == 1
        assert "open()" in findings[0].message

    def test_allows_with_block(self):
        findings = run(
            """
            def f(path):
                with open(path) as fh:
                    return fh.read()
            """,
            "RES001",
        )
        assert findings == []

    def test_allows_try_finally_close(self):
        findings = run(
            """
            def f(path):
                fh = open(path)
                try:
                    return fh.read()
                finally:
                    fh.close()
            """,
            "RES001",
        )
        assert findings == []

    def test_allows_returning_the_handle(self):
        findings = run(
            """
            def f(path):
                return open(path)
            """,
            "RES001",
        )
        assert findings == []

    def test_allows_storing_the_handle_on_self(self):
        findings = run(
            """
            class Holder:
                def connect(self, path):
                    self.fh = open(path)
            """,
            "RES001",
        )
        assert findings == []

    def test_flags_acquire_without_finally_release(self):
        findings = run(
            """
            import threading

            def f():
                lock = threading.Lock()
                lock.acquire()
                work()
                lock.release()
            """,
            "RES001",
        )
        assert len(findings) == 1
        assert "acquire" in findings[0].message

    def test_allows_acquire_with_finally_release(self):
        findings = run(
            """
            import threading

            def f():
                lock = threading.Lock()
                lock.acquire()
                try:
                    work()
                finally:
                    lock.release()
            """,
            "RES001",
        )
        assert findings == []

    def test_store_layer_is_exempt(self):
        findings = run(
            """
            def f(path):
                fh = open(path)
                return fh.read()
            """,
            "RES001",
            path="src/repro/store/blob.py",
        )
        assert findings == []
