"""End-to-end tests for the ``repro lint`` CLI subcommand."""

import json

import pytest

from repro.cli import main

DIRTY = (
    "import numpy as np\n"
    "x = np.random.rand(4)\n"
    "C_COG = 100e-15\n"
)
CLEAN = (
    "import numpy as np\n"
    "\n"
    "\n"
    "def sample(rng: np.random.Generator) -> float:\n"
    "    return float(rng.random())\n"
)


@pytest.fixture
def tree(tmp_path):
    src = tmp_path / "src" / "repro"
    src.mkdir(parents=True)
    (src / "dirty.py").write_text(DIRTY)
    (src / "clean.py").write_text(CLEAN)
    return tmp_path


def lint(*extra, root):
    return main(["lint", "--root", str(root), *extra])


class TestExitCodes:
    def test_nonzero_on_findings(self, tree, capsys):
        code = lint(str(tree / "src"), root=tree)
        out = capsys.readouterr().out
        assert code == 1
        assert "RNG001" in out
        assert "UNIT001" in out

    def test_zero_on_clean_tree(self, tmp_path, capsys):
        src = tmp_path / "src"
        src.mkdir()
        (src / "clean.py").write_text(CLEAN)
        code = lint(str(src), root=tmp_path)
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_missing_path_is_config_error(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            lint(str(tmp_path / "nope"), root=tmp_path)


class TestJsonOutput:
    def test_json_parses_and_lists_findings(self, tree, capsys):
        code = lint(str(tree / "src"), "--format", "json", root=tree)
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        rules = {f["rule"] for f in payload["findings"]}
        assert {"RNG001", "UNIT001"} <= rules
        assert payload["files"] == 2
        assert payload["clean"] is False

    def test_json_clean_shape(self, tmp_path, capsys):
        src = tmp_path / "src"
        src.mkdir()
        (src / "clean.py").write_text(CLEAN)
        code = lint(str(src), "--format", "json", root=tmp_path)
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["findings"] == []
        assert payload["clean"] is True


class TestBaseline:
    def test_write_then_suppress(self, tree, capsys):
        baseline = tree / "lint-baseline.json"
        code = lint(
            str(tree / "src"), "--write-baseline", str(baseline), root=tree
        )
        assert baseline.exists()
        capsys.readouterr()

        code = lint(
            str(tree / "src"), "--baseline", str(baseline), root=tree
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "baselined" in out

    def test_new_violation_escapes_baseline(self, tree, capsys):
        baseline = tree / "lint-baseline.json"
        lint(str(tree / "src"), "--write-baseline", str(baseline), root=tree)
        capsys.readouterr()

        extra = tree / "src" / "repro" / "fresh.py"
        extra.write_text("import random\nv = random.random()\n")
        code = lint(
            str(tree / "src"), "--baseline", str(baseline), root=tree
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "fresh.py" in out


class TestRuleSelection:
    def test_single_rule_filter(self, tree, capsys):
        code = lint(
            str(tree / "src"), "--rules", "UNIT001", root=tree
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "UNIT001" in out
        assert "RNG001" not in out

    def test_list_rules_catalogue(self, tree, capsys):
        code = main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        assert code == 0
        for rule_id in ("RNG001", "IO001", "UNIT001", "TEST001", "ERR001"):
            assert rule_id in out


class TestScopeClassification:
    def test_tests_files_get_tests_rules(self, tmp_path, capsys):
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir()
        (tests_dir / "test_sample.py").write_text(
            "assert f() == 0.25\n"
        )
        code = lint(str(tests_dir), root=tmp_path)
        out = capsys.readouterr().out
        assert code == 1
        assert "TEST001" in out

    def test_src_files_not_checked_for_test_rules(self, tmp_path, capsys):
        src = tmp_path / "src"
        src.mkdir()
        (src / "logic.py").write_text("converged = err == 0.0\n")
        code = lint(str(src), root=tmp_path)
        assert code == 0
