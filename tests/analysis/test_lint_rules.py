"""Per-rule fixture self-tests for the AST linter.

Every rule ships with positive fixtures (the violation is flagged) and
negative fixtures (the sanctioned idiom passes clean), so a rule edit
that silently stops firing — or starts over-firing — fails here first.
"""

import textwrap

import pytest

from repro.analysis.lint import RULES, check_source, get_rule
from repro.errors import ConfigurationError


def run(code, rule_id, **kwargs):
    return check_source(textwrap.dedent(code), rule_id, **kwargs)


class TestRegistry:
    def test_all_rules_registered(self):
        assert set(RULES) >= {
            "RNG001", "IO001", "UNIT001", "TEST001", "ERR001", "TEL001",
            "OBS001",
        }

    def test_rules_have_metadata(self):
        for rule in RULES.values():
            assert rule.id
            assert rule.title
            assert rule.rationale
            assert rule.scopes

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigurationError):
            get_rule("NOPE999")


class TestRng001:
    def test_flags_legacy_numpy_global_call(self):
        findings = run(
            """
            import numpy as np
            x = np.random.rand(4)
            """,
            "RNG001",
        )
        assert len(findings) == 1
        assert findings[0].rule == "RNG001"
        assert "numpy.random.rand" in findings[0].message

    def test_flags_legacy_call_through_full_module_name(self):
        findings = run(
            """
            import numpy
            numpy.random.seed(0)
            y = numpy.random.normal(0, 1, 10)
            """,
            "RNG001",
        )
        assert len(findings) == 2

    def test_flags_stdlib_random_module(self):
        findings = run(
            """
            import random
            v = random.random()
            """,
            "RNG001",
        )
        assert len(findings) == 1

    def test_flags_from_import_of_legacy_names(self):
        findings = run("from numpy.random import rand\n", "RNG001")
        assert len(findings) == 1

    def test_flags_unseeded_default_rng(self):
        findings = run(
            """
            import numpy as np
            rng = np.random.default_rng()
            """,
            "RNG001",
        )
        assert len(findings) == 1
        assert "seed" in findings[0].message.lower()

    def test_allows_seeded_generator(self):
        findings = run(
            """
            import numpy as np

            def sample(rng: np.random.Generator, seed: int):
                local = np.random.default_rng(seed)
                return rng.normal() + local.random()
            """,
            "RNG001",
        )
        assert findings == []

    def test_allows_generator_class_imports(self):
        findings = run(
            "from numpy.random import Generator, default_rng, SeedSequence\n",
            "RNG001",
        )
        assert findings == []

    def test_applies_in_tests_scope_too(self):
        findings = run(
            """
            import numpy as np
            x = np.random.rand(3)
            """,
            "RNG001",
            path="tests/test_x.py",
            scope="tests",
        )
        assert len(findings) == 1


class TestIo001:
    def test_flags_write_mode_open(self):
        findings = run(
            """
            with open("out.json", "w") as fh:
                fh.write("{}")
            """,
            "IO001",
        )
        assert len(findings) == 1

    def test_flags_append_and_exclusive_modes(self):
        findings = run(
            """
            a = open("log.txt", "a")
            b = open("new.bin", "xb")
            """,
            "IO001",
        )
        assert len(findings) == 2

    def test_flags_numpy_and_pickle_writers(self):
        findings = run(
            """
            import pickle

            import numpy as np

            np.save("arr.npy", data)
            np.savez_compressed("arrs.npz", a=a)
            pickle.dump(obj, fh)
            """,
            "IO001",
        )
        assert len(findings) == 3

    def test_flags_path_write_methods(self):
        findings = run(
            """
            from pathlib import Path

            Path("x.txt").write_text("hi")
            """,
            "IO001",
        )
        assert len(findings) == 1

    def test_allows_read_mode_open(self):
        findings = run(
            """
            with open("in.json") as fh:
                data = fh.read()
            text = open("notes.txt", "r").read()
            """,
            "IO001",
        )
        assert findings == []

    def test_exempt_inside_store_package(self):
        findings = run(
            'open("out.bin", "wb").write(b"x")\n',
            "IO001",
            path="src/repro/store/atomic.py",
        )
        assert findings == []

    def test_not_applied_in_tests_scope(self):
        findings = run(
            'open("tmp.txt", "w").write("scratch")\n',
            "IO001",
            path="tests/test_y.py",
            scope="tests",
        )
        assert findings == []


class TestUnit001:
    def test_flags_bare_scientific_constant(self):
        findings = run("C_COG = 100e-15\n", "UNIT001")
        assert len(findings) == 1
        assert "FEMTO" in findings[0].message

    def test_flags_keyword_default(self):
        findings = run(
            """
            def pulse(t_width: float = 100e-9):
                return t_width
            """,
            "UNIT001",
        )
        assert len(findings) == 1
        assert "NANO" in findings[0].message

    def test_flags_call_keyword(self):
        findings = run("configure(slice_time=100e-9)\n", "UNIT001")
        assert len(findings) == 1

    def test_allows_prefix_constant_products(self):
        findings = run(
            """
            from repro.units import FEMTO, NANO

            C_COG = 100 * FEMTO
            SLICE = 100 * NANO
            """,
            "UNIT001",
        )
        assert findings == []

    def test_ignores_nonphysical_names(self):
        findings = run(
            """
            tolerance = 1e-9
            learning_rate = 1e-3
            """,
            "UNIT001",
        )
        assert findings == []

    def test_ignores_decimal_point_literals(self):
        # 0.0001 is not engineering notation; only e-notation literals
        # adjacent to physical names are policed.
        findings = run("t_rise = 0.0001\n", "UNIT001")
        assert findings == []

    def test_exempt_in_units_module(self):
        findings = run(
            "t_base = 1e-9\n", "UNIT001", path="src/repro/units.py"
        )
        assert findings == []


class TestTest001:
    def test_flags_float_equality(self):
        findings = run(
            "assert compute() == 0.25\n",
            "TEST001",
            path="tests/test_z.py",
            scope="tests",
        )
        assert len(findings) == 1

    def test_flags_inequality_and_negative_literals(self):
        findings = run(
            """
            assert f() != 0.99
            assert g() == -1.5
            """,
            "TEST001",
            path="tests/test_z.py",
            scope="tests",
        )
        assert len(findings) == 2

    def test_flags_arithmetic_on_floats(self):
        findings = run(
            "assert h() == 2 * 0.125\n",
            "TEST001",
            path="tests/test_z.py",
            scope="tests",
        )
        assert len(findings) == 1

    def test_allows_pytest_approx(self):
        findings = run(
            """
            import pytest

            assert compute() == pytest.approx(0.25)
            assert other() == pytest.approx(-1.5, rel=1e-6)
            """,
            "TEST001",
            path="tests/test_z.py",
            scope="tests",
        )
        assert findings == []

    def test_allows_integer_equality(self):
        findings = run(
            """
            assert count() == 3
            assert name() == "x"
            """,
            "TEST001",
            path="tests/test_z.py",
            scope="tests",
        )
        assert findings == []

    def test_not_applied_to_src_scope(self):
        findings = run("converged = err == 0.0\n", "TEST001")
        assert findings == []


class TestErr001:
    def test_flags_builtin_valueerror(self):
        findings = run('raise ValueError("bad input")\n', "ERR001")
        assert len(findings) == 1
        assert "repro.errors" in findings[0].message

    def test_flags_bare_exception_classes(self):
        findings = run(
            """
            raise RuntimeError("boom")
            raise Exception
            """,
            "ERR001",
        )
        assert len(findings) == 2

    def test_allows_taxonomy_errors(self):
        findings = run(
            """
            from repro.errors import ConfigurationError, ShapeError

            raise ConfigurationError("bad parameter bundle")
            """,
            "ERR001",
        )
        assert findings == []

    def test_allows_bare_reraise(self):
        findings = run(
            """
            try:
                work()
            except Exception:
                raise
            """,
            "ERR001",
        )
        assert findings == []

    def test_exempt_in_errors_module(self):
        findings = run(
            'raise ValueError("boot")\n', "ERR001", path="src/repro/errors.py"
        )
        assert findings == []

    def test_not_applied_in_tests_scope(self):
        findings = run(
            'raise ValueError("expected by pytest.raises")\n',
            "ERR001",
            path="tests/test_w.py",
            scope="tests",
        )
        assert findings == []


class TestTel001:
    def test_flags_direct_time_call(self):
        findings = run(
            """
            import time
            start = time.time()
            """,
            "TEL001",
        )
        assert len(findings) == 1
        assert "time.time" in findings[0].message

    def test_flags_perf_counter_and_monotonic(self):
        findings = run(
            """
            import time
            a = time.perf_counter()
            b = time.monotonic()
            c = time.process_time_ns()
            """,
            "TEL001",
        )
        assert len(findings) == 3

    def test_flags_from_import_form(self):
        findings = run(
            """
            from time import perf_counter
            t = perf_counter()
            """,
            "TEL001",
        )
        assert len(findings) == 1

    def test_allows_time_sleep(self):
        findings = run(
            """
            import time
            time.sleep(0.01)
            """,
            "TEL001",
        )
        assert findings == []

    def test_allows_telemetry_clock(self):
        findings = run(
            """
            from repro.telemetry.clock import perf
            t = perf()
            """,
            "TEL001",
        )
        assert findings == []

    def test_exempt_inside_telemetry_package(self):
        findings = run(
            """
            import time
            t = time.perf_counter()
            """,
            "TEL001",
            path="src/repro/telemetry/clock.py",
        )
        assert findings == []

    def test_exempt_inside_benchmarks(self):
        findings = run(
            """
            import time
            t = time.perf_counter()
            """,
            "TEL001",
            path="benchmarks/bench_perf_mc.py",
        )
        assert findings == []

    def test_applies_in_tests_scope(self):
        findings = run(
            """
            import time
            t = time.monotonic()
            """,
            "TEL001",
            path="tests/test_w.py",
            scope="tests",
        )
        assert len(findings) == 1


class TestObs001:
    def test_flags_getLogger(self):
        findings = run(
            """
            import logging
            logger = logging.getLogger("repro.store")
            """,
            "OBS001",
        )
        assert len(findings) == 1
        assert "logging.getLogger" in findings[0].message
        assert "get_logger" in findings[0].message

    def test_flags_from_import_form(self):
        findings = run(
            """
            from logging import getLogger
            logger = getLogger(__name__)
            """,
            "OBS001",
        )
        assert len(findings) == 1

    def test_flags_root_logger_calls_and_basicConfig(self):
        findings = run(
            """
            import logging
            logging.basicConfig(level=10)
            logging.warning("free-form %s", "text")
            logging.error("boom")
            """,
            "OBS001",
        )
        assert len(findings) == 3

    def test_allows_structured_logger(self):
        findings = run(
            """
            from repro.telemetry.logging import get_logger
            log = get_logger("repro.store")
            log.warning("quarantined", key="a/b")
            """,
            "OBS001",
        )
        assert findings == []

    def test_allows_non_call_mentions(self):
        # Only *calls* are flagged: type annotations / attribute reads
        # that never invoke the stdlib API pass clean.
        findings = run(
            """
            import logging
            LEVEL = logging.WARNING
            """,
            "OBS001",
        )
        assert findings == []

    def test_exempt_inside_telemetry_package(self):
        findings = run(
            """
            import logging
            root = logging.getLogger("repro")
            """,
            "OBS001",
            path="src/repro/telemetry/logging.py",
        )
        assert findings == []

    def test_applies_in_tests_scope(self):
        findings = run(
            """
            import logging
            logger = logging.getLogger("x")
            """,
            "OBS001",
            path="tests/test_w.py",
            scope="tests",
        )
        assert len(findings) == 1


class TestFindingContract:
    def test_fingerprint_stable_across_line_moves(self):
        a = run("x = 1\nC_COG = 100e-15\n", "UNIT001")[0]
        b = run("x = 1\ny = 2\n\nC_COG = 100e-15\n", "UNIT001")[0]
        assert a.line != b.line
        assert a.fingerprint() == b.fingerprint()

    def test_render_format(self):
        finding = run("C_COG = 100e-15\n", "UNIT001")[0]
        text = finding.render()
        assert text.startswith("src/repro/example.py:")
        assert "UNIT001" in text

    def test_to_json_round_trips(self):
        finding = run("C_COG = 100e-15\n", "UNIT001")[0]
        payload = finding.to_json()
        assert payload["rule"] == "UNIT001"
        assert payload["line"] == finding.line
        assert payload["fingerprint"] == finding.fingerprint()
