"""Self-hosting gate: the shipped tree must satisfy its own linter.

This is the tier-1 enforcement point for the repository invariants —
seeded RNG everywhere, atomic IO outside ``repro/store``, SI-prefix
constants for physical quantities, tolerance-aware float assertions in
tests, and the ``repro.errors`` taxonomy for every ``raise`` in ``src``.
If a change reintroduces a violation, this test fails before CI's lint
job ever runs.
"""

import os

from repro.analysis.lint import RULES, run_lint

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)


def test_repo_root_layout():
    assert os.path.isdir(os.path.join(REPO_ROOT, "src", "repro"))
    assert os.path.isdir(os.path.join(REPO_ROOT, "tests"))


def test_shipped_tree_is_clean():
    report = run_lint(root=REPO_ROOT)
    assert report.errors == [], f"unparseable files: {report.errors}"
    details = "\n".join(f.render() for f in report.findings)
    assert report.clean, f"lint violations in shipped tree:\n{details}"
    assert report.exit_code == 0


def test_shipped_tree_needs_no_baseline():
    # The linter landed with every historical violation fixed, so the
    # suppression file must stay empty/absent. A finding that "needs"
    # a baseline entry is a regression, not legacy debt.
    report = run_lint(root=REPO_ROOT)
    assert report.suppressed == 0


def test_every_registered_rule_participates():
    report = run_lint(root=REPO_ROOT)
    # Sanity: the run actually visited a substantial tree with all
    # rules active, rather than passing vacuously.
    assert report.files > 100
    assert set(RULES) >= {
        "RNG001", "IO001", "UNIT001", "TEST001", "ERR001", "TEL001",
    }
