"""Self-hosting gate: the shipped tree must satisfy its own linter.

This is the tier-1 enforcement point for the repository invariants —
seeded RNG everywhere, atomic IO outside ``repro/store``, SI-prefix
constants for physical quantities, tolerance-aware float assertions in
tests, the ``repro.errors`` taxonomy for every ``raise`` in ``src``,
and the project-wide dataflow family (async-safety, waiter resolution,
fork-safety, exception hygiene, resource lifetimes) with an *empty*
baseline.  If a change reintroduces a violation, this test fails
before CI's lint job ever runs.
"""

import json
import os

from repro.analysis.lint import (
    DEEP_RULE_IDS,
    LintReport,
    RULES,
    check_source,
    render_sarif,
    run_lint,
)

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)


def test_repo_root_layout():
    assert os.path.isdir(os.path.join(REPO_ROOT, "src", "repro"))
    assert os.path.isdir(os.path.join(REPO_ROOT, "tests"))


def test_shipped_tree_is_clean():
    report = run_lint(root=REPO_ROOT)
    assert report.errors == [], f"unparseable files: {report.errors}"
    details = "\n".join(f.render() for f in report.findings)
    assert report.clean, f"lint violations in shipped tree:\n{details}"
    assert report.exit_code == 0


def test_shipped_tree_needs_no_baseline():
    # The linter landed with every historical violation fixed, so the
    # suppression file must stay empty/absent. A finding that "needs"
    # a baseline entry is a regression, not legacy debt.
    report = run_lint(root=REPO_ROOT)
    assert report.suppressed == 0


def test_every_registered_rule_participates():
    report = run_lint(root=REPO_ROOT)
    # Sanity: the run actually visited a substantial tree with all
    # rules active, rather than passing vacuously.
    assert report.files > 100
    assert set(RULES) >= {
        "RNG001", "IO001", "UNIT001", "TEST001", "ERR001", "TEL001",
    }
    assert set(RULES) >= set(DEEP_RULE_IDS)


# ----------------------------------------------------------------------
# the deep dataflow family self-hosts with an empty baseline
def _read(path):
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read()


BATCHER_REL = "src/repro/serving/batcher.py"
DAEMON_REL = "src/repro/serving/daemon.py"


class TestDeepFamilySelfHost:
    def test_deep_rules_clean_with_documented_exemptions(self):
        report = run_lint(root=REPO_ROOT, rules=list(DEEP_RULE_IDS))
        assert report.errors == []
        details = "\n".join(f.render() for f in report.findings)
        assert report.findings == [], (
            f"deep-rule violations in shipped tree:\n{details}"
        )
        # Exactly the three documented conversion boundaries (per-model
        # load isolation in registry.py, the connection-level HTTP 500
        # in server.handle, and the traced per-request 500 in
        # server._predict that stamps the trace id onto model-bug
        # responses) carry `# lint: exempt EXC002` comments. A fourth
        # exemption is a design decision, not a drive-by.
        assert report.exempted == 3

    def test_batcher_satisfies_the_waiter_contract(self):
        findings = check_source(
            _read(os.path.join(REPO_ROOT, BATCHER_REL)),
            "ASYNC002", path=BATCHER_REL,
        )
        assert findings == []

    def test_daemon_satisfies_the_waiter_contract(self):
        findings = check_source(
            _read(os.path.join(REPO_ROOT, DAEMON_REL)),
            "ASYNC002", path=DAEMON_REL,
        )
        assert findings == []

    def test_mutant_dropping_fail_batch_is_caught(self):
        # Acceptance check for ASYNC002: delete the exception-path
        # resolution in MicroBatcher._flush and the rule must fire —
        # that mutant abandons every waiter in the batch whenever the
        # compute stage raises.
        source = _read(os.path.join(REPO_ROOT, BATCHER_REL))
        marker = "            self._fail_batch(batch, exc)\n"
        assert source.count(marker) == 1, (
            "batcher changed shape; re-seat the ASYNC002 mutant test"
        )
        mutant = source.replace(
            marker, "            pass  # mutant: waiter dropped\n"
        )
        findings = check_source(mutant, "ASYNC002", path=BATCHER_REL)
        assert any(
            f.rule == "ASYNC002" and "'batch'" in f.message
            for f in findings
        ), "seeded waiter-drop mutant was not caught"


# ----------------------------------------------------------------------
class TestSarifOutput:
    def test_clean_tree_renders_valid_sarif(self):
        report = run_lint(root=REPO_ROOT)
        doc = json.loads(render_sarif(report))
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        run = doc["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert set(DEEP_RULE_IDS) <= rule_ids
        assert run["results"] == []
        assert run["invocations"][0]["executionSuccessful"] is True

    def test_findings_carry_location_and_fingerprint(self):
        findings = check_source(
            "import time\n\nasync def f():\n    time.sleep(1)\n",
            "ASYNC001",
        )
        assert len(findings) == 1
        report = LintReport(findings=findings, files=1)
        doc = json.loads(render_sarif(report))
        result = doc["runs"][0]["results"][0]
        assert result["ruleId"] == "ASYNC001"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/example.py"
        assert location["region"]["startLine"] == 4
        assert (result["partialFingerprints"]["reproLint/v1"]
                == findings[0].fingerprint())
