"""ASCII plotting."""

import numpy as np
import pytest

from repro.analysis.plots import Series, ascii_plot
from repro.errors import ConfigurationError


@pytest.fixture
def ramp_series():
    x = np.linspace(0, 1, 20)
    return Series(x, 2 * x, "ramp", "o")


class TestSeries:
    def test_valid(self, ramp_series):
        assert ramp_series.label == "ramp"

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            Series(np.zeros(3), np.zeros(4), "bad")

    def test_empty(self):
        with pytest.raises(ConfigurationError):
            Series(np.array([]), np.array([]), "bad")

    def test_long_marker(self):
        with pytest.raises(ConfigurationError):
            Series(np.zeros(2), np.zeros(2), "bad", marker="xx")


class TestAsciiPlot:
    def test_contains_markers_and_legend(self, ramp_series):
        text = ascii_plot([ramp_series], title="T")
        assert text.startswith("T")
        assert "o" in text
        assert "legend: o ramp" in text

    def test_axis_annotations(self, ramp_series):
        text = ascii_plot([ramp_series], x_unit="s", y_unit="V")
        assert "1 s" in text
        assert "2 V" in text

    def test_extremes_land_on_borders(self):
        s = Series(np.array([0.0, 1.0]), np.array([0.0, 1.0]), "d", "#")
        text = ascii_plot([s], width=20, height=8)
        rows = [line for line in text.splitlines() if "|" in line]
        assert rows[0].rstrip().endswith("#|")   # max at top-right
        assert "|#" in rows[-1]                   # min at bottom-left

    def test_later_series_draw_on_top(self):
        a = Series(np.array([0.5]), np.array([0.5]), "under", "u")
        b = Series(np.array([0.5]), np.array([0.5]), "over", "v")
        # Force a shared scale so both land on the same cell.
        anchor = Series(np.array([0.0, 1.0]), np.array([0.0, 1.0]), "frame", ".")
        text = ascii_plot([anchor, a, b])
        assert "v" in text
        assert "u" not in text.split("legend")[0]

    def test_constant_series_handled(self):
        s = Series(np.array([1.0, 2.0]), np.array([3.0, 3.0]), "flat")
        text = ascii_plot([s])
        assert "flat" in text

    def test_auto_markers_distinct(self):
        x = np.linspace(0, 1, 5)
        text = ascii_plot([
            Series(x, x, "a"), Series(x, 1 - x, "b")
        ])
        assert "legend: o a   x b" in text

    def test_validation(self, ramp_series):
        with pytest.raises(ConfigurationError):
            ascii_plot([])
        with pytest.raises(ConfigurationError):
            ascii_plot([ramp_series], width=4)
