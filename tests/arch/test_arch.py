"""Architecture-level pipeline simulator."""

import numpy as np
import pytest

from repro.arch import (
    ChipDescription,
    PipelineSimulator,
    Station,
    chip_from_deployment,
    render_gantt,
    utilisation_report,
)
from repro.core.pipeline import schedule_pipeline
from repro.errors import ConfigurationError

SLICE = 100e-9


def uniform_chip(layers: int, service: int = 2, capacity=None) -> ChipDescription:
    return ChipDescription(
        stations=tuple(
            Station(f"layer{i}", service, buffer_capacity=capacity)
            for i in range(layers)
        ),
        slice_length=SLICE,
    )


class TestAgainstAnalyticSchedule:
    """The simulator must reproduce the closed-form pipeline model."""

    @pytest.mark.parametrize("layers,samples", [(1, 4), (3, 6), (5, 10)])
    def test_matches_schedule_pipeline(self, layers, samples):
        chip = uniform_chip(layers)
        result = PipelineSimulator(chip).run(samples)
        analytic = schedule_pipeline(layers, samples, SLICE)
        assert result.sample_latency_slices(0) == analytic.sample_latency_slices
        assert result.steady_interval_slices() == pytest.approx(
            analytic.initiation_interval_slices
        )
        assert result.makespan_slices == analytic.total_slices

    def test_analytic_helpers_agree(self):
        chip = uniform_chip(4)
        result = PipelineSimulator(chip).run(8)
        assert result.sample_latency_slices(0) == chip.analytic_latency_slices()
        assert result.steady_interval_slices() == pytest.approx(
            chip.analytic_interval_slices()
        )


class TestBottleneck:
    def test_slow_station_sets_interval(self):
        chip = ChipDescription(
            stations=(
                Station("fast", 2),
                Station("slow", 8),
                Station("fast2", 2),
            ),
            slice_length=SLICE,
        )
        result = PipelineSimulator(chip).run(12)
        assert result.steady_interval_slices() == pytest.approx(8)
        assert result.throughput() == pytest.approx(1.0 / (8 * SLICE))

    def test_bottleneck_fully_utilised(self):
        chip = ChipDescription(
            stations=(Station("fast", 2), Station("slow", 6)),
            slice_length=SLICE,
        )
        result = PipelineSimulator(chip).run(20)
        assert result.utilisation(1) > 0.9
        assert result.utilisation(0) < 0.5


class TestBackpressure:
    def test_unbounded_buffer_fills_before_slow_stage(self):
        chip = ChipDescription(
            stations=(Station("fast", 2), Station("slow", 10)),
            slice_length=SLICE,
        )
        result = PipelineSimulator(chip).run(10)
        assert result.peak_buffer_occupancy(0) > 2

    def test_finite_buffer_limits_occupancy(self):
        chip = ChipDescription(
            stations=(
                Station("fast", 2, buffer_capacity=2),
                Station("slow", 10),
            ),
            slice_length=SLICE,
        )
        result = PipelineSimulator(chip).run(10)
        assert result.peak_buffer_occupancy(0) <= 2

    def test_backpressure_preserves_throughput(self):
        """Finite buffers stall the producer but cannot slow the
        bottleneck — classic pipeline theory."""
        free = PipelineSimulator(
            ChipDescription((Station("a", 2), Station("b", 10)), SLICE)
        ).run(16)
        tight = PipelineSimulator(
            ChipDescription(
                (Station("a", 2, buffer_capacity=1), Station("b", 10)), SLICE
            )
        ).run(16)
        assert tight.steady_interval_slices() == pytest.approx(
            free.steady_interval_slices()
        )

    def test_last_station_has_no_buffer(self):
        chip = uniform_chip(2)
        result = PipelineSimulator(chip).run(4)
        assert result.peak_buffer_occupancy(1) == 0


class TestArrivals:
    def test_slow_arrivals_dominate(self):
        chip = uniform_chip(2)
        result = PipelineSimulator(chip).run(8, arrival_interval=10)
        assert result.steady_interval_slices() == pytest.approx(10)

    def test_explicit_arrivals(self):
        chip = uniform_chip(1)
        result = PipelineSimulator(chip).run(3, arrivals=[0, 0, 50])
        assert result.starts[0, 2] == 50

    def test_arrival_validation(self):
        sim = PipelineSimulator(uniform_chip(1))
        with pytest.raises(ConfigurationError):
            sim.run(0)
        with pytest.raises(ConfigurationError):
            sim.run(2, arrivals=[5, 0])
        with pytest.raises(ConfigurationError):
            sim.run(2, arrival_interval=-1)


class TestDeploymentBridge:
    def test_chip_from_deployment(self, rng):
        from repro.core.mvm import MVMMode
        from repro.mapping import ReSiPEBackend, compile_network, plan_deployment
        from repro.nn import Dense, ReLU, Sequential

        model = Sequential(
            [Dense(20, 12, rng=rng), ReLU(), Dense(12, 4, rng=rng)], name="m"
        )
        mapped = compile_network(model, ReSiPEBackend(mode=MVMMode.LINEAR))
        report = plan_deployment(mapped)
        chip = chip_from_deployment(report, SLICE)
        result = PipelineSimulator(chip).run(10)
        # Simulated throughput matches the planner's closed form.
        assert result.throughput() == pytest.approx(report.throughput)


class TestRendering:
    def test_gantt(self):
        result = PipelineSimulator(uniform_chip(3)).run(4)
        text = render_gantt(result)
        assert "layer0" in text
        assert "0" in text

    def test_utilisation_report(self):
        result = PipelineSimulator(uniform_chip(2)).run(4)
        text = utilisation_report(result)
        assert "throughput" in text
        assert "utilisation" in text.lower()

    def test_gantt_validation(self):
        result = PipelineSimulator(uniform_chip(1)).run(1)
        with pytest.raises(ConfigurationError):
            render_gantt(result, max_slices=0)

    def test_gantt_header_aligns_with_row_cells(self):
        # Regression: the tick header used a 15-char pad while rows
        # carry a 16-char "<name> |" prefix, so every decade digit sat
        # one column left of the slice it labelled.
        result = PipelineSimulator(uniform_chip(2, service=7)).run(4)
        header, first_row = render_gantt(result).splitlines()[:2]
        prefix = first_row.index("|") + 1
        assert header[:prefix] == " " * prefix
        # The digit labelling slice t must sit over the cell of slice t.
        for offset, char in enumerate(header[prefix:]):
            if char != " ":
                assert offset % 10 == 0
                assert char == str((offset // 10) % 10)
        # Sanity: the truncated-horizon path keeps the same alignment.
        header_cut, row_cut = render_gantt(
            result, max_slices=12
        ).splitlines()[:2]
        assert len(header_cut) <= len(row_cut)
        assert header_cut.rstrip()[-1] == "1"  # decade tick at slice 10
        assert len(header_cut.rstrip()) == prefix + 10 + 1


class TestValidation:
    def test_empty_chip(self):
        with pytest.raises(ConfigurationError):
            ChipDescription(stations=(), slice_length=SLICE)

    def test_bad_station(self):
        with pytest.raises(ConfigurationError):
            Station("x", 0)
        with pytest.raises(ConfigurationError):
            Station("x", 2, buffer_capacity=0)
