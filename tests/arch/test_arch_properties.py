"""Hypothesis properties of the pipeline simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import ChipDescription, PipelineSimulator, Station

SLICE = 100e-9

services = st.lists(st.integers(1, 12), min_size=1, max_size=6)


class TestSimulatorProperties:
    @given(svc=services, samples=st.integers(2, 15))
    @settings(max_examples=40, deadline=None)
    def test_steady_interval_is_bottleneck(self, svc, samples):
        chip = ChipDescription(
            stations=tuple(Station(f"s{i}", t) for i, t in enumerate(svc)),
            slice_length=SLICE,
        )
        result = PipelineSimulator(chip).run(samples)
        assert result.steady_interval_slices() == pytest.approx(max(svc))

    @given(svc=services)
    @settings(max_examples=40, deadline=None)
    def test_first_sample_latency_matches_analytic(self, svc):
        chip = ChipDescription(
            stations=tuple(Station(f"s{i}", t) for i, t in enumerate(svc)),
            slice_length=SLICE,
        )
        result = PipelineSimulator(chip).run(3)
        assert result.sample_latency_slices(0) == chip.analytic_latency_slices()

    @given(svc=services, samples=st.integers(1, 10), cap=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_finite_buffers_never_violate_capacity(self, svc, samples, cap):
        chip = ChipDescription(
            stations=tuple(
                Station(f"s{i}", t, buffer_capacity=cap)
                for i, t in enumerate(svc)
            ),
            slice_length=SLICE,
        )
        result = PipelineSimulator(chip).run(samples)
        for i in range(len(svc) - 1):
            assert result.peak_buffer_occupancy(i) <= cap

    @given(svc=services, samples=st.integers(2, 10))
    @settings(max_examples=40, deadline=None)
    def test_causality_and_ordering(self, svc, samples):
        chip = ChipDescription(
            stations=tuple(Station(f"s{i}", t) for i, t in enumerate(svc)),
            slice_length=SLICE,
        )
        result = PipelineSimulator(chip).run(samples)
        # In-order processing per station.
        assert np.all(np.diff(result.starts, axis=1) >= 0)
        # A station never finishes a sample before its producer is within
        # the overlap window of finishing it.
        for i in range(1, len(svc)):
            assert np.all(
                result.starts[i] >= result.finishes[i - 1] - chip.overlap
            )

    @given(svc=services, samples=st.integers(2, 10), cap=st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_backpressure_never_improves_makespan(self, svc, samples, cap):
        free = PipelineSimulator(
            ChipDescription(
                tuple(Station(f"s{i}", t) for i, t in enumerate(svc)), SLICE
            )
        ).run(samples)
        tight = PipelineSimulator(
            ChipDescription(
                tuple(Station(f"s{i}", t, buffer_capacity=cap)
                      for i, t in enumerate(svc)),
                SLICE,
            )
        ).run(samples)
        assert tight.makespan_slices >= free.makespan_slices
