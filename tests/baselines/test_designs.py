"""Baseline PIM designs and the comparison interface."""

import numpy as np
import pytest

from repro.baselines import (
    LevelBasedPIM,
    PWMBasedPIM,
    RateCodingPIM,
    ReSiPEDesign,
    all_designs,
    design_taxonomy,
)
from repro.errors import ConfigurationError, ShapeError


@pytest.fixture(scope="module")
def designs():
    return all_designs()


@pytest.fixture(scope="module")
def stimulus():
    rng = np.random.default_rng(0)
    return rng.random((4, 32)), rng.random((32, 32))


class TestCommonInterface:
    def test_four_designs(self, designs):
        assert len(designs) == 4
        assert "ReSiPE (this work)" in designs

    def test_ops_accounting(self, designs):
        for d in designs.values():
            assert d.ops_per_mvm() == 2048

    def test_metrics_consistent(self, designs):
        for d in designs.values():
            m = d.metrics()
            assert m.power > 0
            assert m.area > 0
            assert m.throughput == pytest.approx(2048 / m.initiation_interval)
            assert m.power_efficiency == pytest.approx(m.throughput / m.power)

    def test_functional_fidelity(self, designs, stimulus):
        x, w = stimulus
        reference = x @ w
        for name, d in designs.items():
            y = np.asarray(d.mvm_values(x, w))
            assert y.shape == reference.shape
            err = np.abs(y - reference).max() / reference.max()
            assert err < 0.05, f"{name} error {err}"

    def test_shape_validation(self, designs, stimulus):
        x, w = stimulus
        for d in designs.values():
            with pytest.raises(ShapeError):
                d.mvm_values(x[:, :16], w)
            with pytest.raises(ShapeError):
                d.mvm_values(x, w[:16])


class TestPaperOrderings:
    """The qualitative Table II structure must hold."""

    def test_resipe_lowest_power(self, designs):
        resipe = designs["ReSiPE (this work)"].power
        for name, d in designs.items():
            if name != "ReSiPE (this work)":
                assert resipe < d.power

    def test_resipe_best_power_efficiency(self, designs):
        resipe = designs["ReSiPE (this work)"].power_efficiency
        for name, d in designs.items():
            if name != "ReSiPE (this work)":
                assert resipe > d.power_efficiency

    def test_resipe_smallest_area(self, designs):
        resipe = designs["ReSiPE (this work)"].area
        for name, d in designs.items():
            if name != "ReSiPE (this work)":
                assert resipe < d.area

    def test_latency_ordering(self, designs):
        level = designs["level-based [14,17]"].latency
        resipe = designs["ReSiPE (this work)"].latency
        rate = designs["rate-coding [11,13]"].latency
        pwm = designs["PWM-based [15]"].latency
        assert level <= resipe < rate < pwm

    def test_paper_latency_reductions(self, designs):
        resipe = designs["ReSiPE (this work)"].latency
        assert 1 - resipe / designs["rate-coding [11,13]"].latency == pytest.approx(0.5)
        assert 1 - resipe / designs["PWM-based [15]"].latency == pytest.approx(
            0.688, abs=0.005
        )


class TestLevelBased:
    def test_quantisation_error_bounded_by_bits(self, rng):
        d = LevelBasedPIM(dac_bits=6, adc_bits=8)
        x = rng.random(32)
        assert np.abs(d.quantise_inputs(x) - x).max() <= 0.5 / (2**6 - 1)

    def test_adc_count(self):
        assert LevelBasedPIM(adc_share=8).num_adcs == 4
        assert LevelBasedPIM(cols=30, adc_share=8).num_adcs == 4

    def test_interface_dominates_power(self):
        report = LevelBasedPIM().budget()
        assert report.group_power_share("interface") > 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LevelBasedPIM(dac_bits=0)
        with pytest.raises(ConfigurationError):
            LevelBasedPIM(conversion_time=0.0)


class TestRateCoding:
    def test_double_buffered_ii(self):
        d = RateCodingPIM()
        assert d.initiation_interval == pytest.approx(d.window / 2)

    def test_quantisation_from_spike_budget(self):
        d = RateCodingPIM(max_spikes=128)
        x = np.array([0.5004])
        q = d.encode_counts(x)
        assert q[0] == pytest.approx(64.0)

    def test_stochastic_mode(self, rng):
        d = RateCodingPIM(stochastic=True)
        counts = d.encode_counts(np.full(1000, 0.5), rng)
        assert counts.mean() == pytest.approx(64, rel=0.05)

    def test_stochastic_requires_rng(self):
        d = RateCodingPIM(stochastic=True)
        with pytest.raises(ConfigurationError):
            d.encode_counts(np.array([0.5]))

    def test_wordline_activity_scales_with_input(self):
        quiet = RateCodingPIM(mean_input=0.1)
        loud = RateCodingPIM(mean_input=0.9)
        assert loud.wordline_activity() > quiet.wordline_activity()
        assert loud.power > quiet.power  # data-coupled energy

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RateCodingPIM(max_spikes=0)
        with pytest.raises(ConfigurationError):
            RateCodingPIM(max_spikes=1000, window=100e-9, spike_width=1e-9)


class TestPWM:
    def test_time_levels(self):
        d = PWMBasedPIM(pulse_window=320e-9, clock=1e9)
        assert d.time_levels == 320

    def test_longest_latency(self):
        d = PWMBasedPIM()
        assert d.latency == pytest.approx(640e-9)

    def test_still_requires_adc(self):
        report = PWMBasedPIM().budget()
        labels = [line.label for line in report.lines]
        assert any("ADC" in label for label in labels)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PWMBasedPIM(pulse_window=0.0)
        with pytest.raises(ConfigurationError):
            PWMBasedPIM(mean_input=1.5)


class TestReSiPEDesign:
    def test_cog_share(self):
        d = ReSiPEDesign()
        assert 0.8 < d.cog_power_share() < 1.0

    def test_functional_exact_in_linear_mode(self, stimulus):
        x, w = stimulus
        d = ReSiPEDesign()
        y = d.mvm_values(x, w)
        assert np.allclose(y, x @ w, atol=1e-9)


class TestTaxonomy:
    def test_five_families(self):
        tax = design_taxonomy()
        assert set(tax) == {
            "Level", "PWM", "Rate coding", "Temporal coding", "This work"
        }

    def test_this_work_is_short_duration(self):
        tax = design_taxonomy()
        assert tax["This work"].nonzero_voltage_duration == "short"
        durations = {k: v.nonzero_voltage_duration for k, v in tax.items()}
        assert durations["Level"] == "long"

    def test_only_rate_coding_changes_scale(self):
        tax = design_taxonomy()
        assert tax["Rate coding"].in_out_scale == "different"
        assert tax["This work"].in_out_scale == "same"
