"""Chaos-suite fixtures: a daemon factory with an injected fault plan.

Reuses the serving fixtures (toy registry, input rows) and adds
``chaos_server`` — the pytest face of ``repro serve --chaos SPEC``:
give it a spec string, get back a running :class:`BackgroundServer`
with the parsed :class:`~repro.chaos.ChaosPlan` wired into its compute,
registry-load and connection paths.
"""

import pytest

from repro.chaos import parse_chaos_spec
from repro.errors import ExecutionError
from repro.serving import BackgroundServer, ServingConfig

from tests.serving.conftest import (  # noqa: F401  (re-exported fixtures)
    entry,
    registry,
    rows,
    scripted_entry,
    slow_entry,
)


def chaos_config(**kwargs):
    defaults = dict(port=0, models=("toy",), batch_window_s=0.0,
                    max_batch=8)
    defaults.update(kwargs)
    return ServingConfig(**defaults)


@pytest.fixture
def chaos_server(registry):  # noqa: F811  (pytest fixture injection)
    """Factory: ``launch(spec, config=..., registry_=...)`` starts a
    BackgroundServer under the parsed chaos plan; everything launched
    is stopped at teardown even if the test failed midway."""
    servers = []

    def launch(spec, config=None, registry_=None):
        plan = parse_chaos_spec(spec)
        server = BackgroundServer(
            registry_ if registry_ is not None else registry,
            config if config is not None else chaos_config(),
            chaos=plan,
        )
        servers.append(server)
        return server.start(), plan

    yield launch
    for server in servers:
        try:
            server.stop()
        except ExecutionError:
            pass  # already stopped by the test body
