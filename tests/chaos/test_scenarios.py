"""End-to-end chaos scenarios: the daemon must survive every injected
infrastructure fault with zero hung requests, the documented error
taxonomy, and byte-identical post-recovery predictions.

Each scenario drives a real :class:`BackgroundServer` over sockets with
a seeded :class:`~repro.chaos.ChaosPlan` and closes with the same two
checks: ``/healthz`` still answers, and serving the full row set again
reproduces one serial ``PIMExecutor`` pass exactly.
"""

import time

import pytest

from repro.chaos import parse_chaos_spec
from repro.errors import ConfigurationError
from repro.serving import ModelRegistry, RetryPolicy, client

from tests.serving.conftest import serial_labels

from .conftest import chaos_config


def _assert_recovered(server, entry, rows):
    """Post-recovery predictions are byte-identical to a serial pass
    and the daemon still reports healthy."""
    served = []
    for row in rows:
        status, doc = client.predict(
            server.host, server.port, "toy", row, timeout=10.0
        )
        assert status == 200
        served.append(doc["predictions"][0])
    assert served == serial_labels(entry, rows)
    status, health = client.request(
        server.host, server.port, "GET", "/healthz"
    )
    assert (status, health["status"]) == (200, "ok")


class TestComputeExceptionScenario:
    def test_500s_then_breaker_then_recovery(self, chaos_server, entry,
                                             rows):
        """Two injected forward-pass faults: each answers 500 (a model
        bug, not a serving bug), the breaker trips, fails fast with
        503 + Retry-After, then one probe batch re-closes it."""
        server, plan = chaos_server(
            "compute-exception:after=0,count=2",
            config=chaos_config(breaker_threshold=2,
                                breaker_cooldown_s=0.2),
        )
        for _ in range(2):
            status, doc = client.predict(
                server.host, server.port, "toy", rows[0], timeout=10.0
            )
            assert status == 500
            assert "ChaosFault" in doc["error"]
        status, doc = client.predict(
            server.host, server.port, "toy", rows[0], timeout=10.0
        )
        assert status == 503, "an open breaker must fail fast"
        assert "circuit breaker is open" in doc["error"]
        assert doc["retry_after_s"] > 0
        time.sleep(0.25)  # cooldown elapses -> half-open probe
        _assert_recovered(server, entry, rows)
        _, metrics = client.request(
            server.host, server.port, "GET", "/metrics"
        )
        assert metrics["totals"]["compute_failures"] == 2
        assert metrics["totals"]["breaker_rejected"] >= 1
        assert metrics["models"]["toy"]["breaker_opens"] == 1
        assert plan.fired_total() == 2
        server.stop()
        assert server.daemon.drain_abandoned_total == 0, (
            "no request may be left unresolved"
        )


class TestLatencySpikeScenario:
    def test_timeout_rebuild_then_recovery(self, chaos_server, entry,
                                           rows):
        """One forward pass stalls past the compute timeout: its batch
        is answered 503, the pool is rebuilt, and the next batch runs
        on the fresh executor while the hung thread finishes offstage."""
        server, plan = chaos_server(
            "latency-spike:ms=400,after=0,count=1",
            config=chaos_config(compute_timeout_s=0.05),
        )
        status, doc = client.predict(
            server.host, server.port, "toy", rows[0], timeout=10.0
        )
        assert status == 503
        assert "compute timeout" in doc["error"]
        _assert_recovered(server, entry, rows)
        _, metrics = client.request(
            server.host, server.port, "GET", "/metrics"
        )
        assert metrics["totals"]["compute_timeouts"] == 1
        assert metrics["compute_rebuilds"] == 1
        assert plan.fired_total() == 1
        server.stop()
        assert server.daemon.drain_abandoned_total == 0


class TestRegistryCorruptionScenario:
    def test_failed_load_is_isolated_per_model(self, chaos_server, entry,
                                               rows):
        """An artifact that fails at load marks only that model: the
        daemon starts, answers 503 for it and keeps serving the rest."""
        load_plan = parse_chaos_spec(
            "registry-corruption:model=broken,mode=fail"
        )
        plan_registry = ModelRegistry.build(
            ["toy", "broken"],
            loader=lambda key: entry,
            load_hook=load_plan.on_model_load,
        )
        assert "broken" in plan_registry.failed
        server, _ = chaos_server(
            "conn-drop:after=0,count=0",  # inert plan; fault is at load
            registry_=plan_registry,
        )
        status, doc = client.predict(
            server.host, server.port, "broken", rows[0], timeout=10.0
        )
        assert status == 503
        assert "failed to load" in doc["error"]
        _assert_recovered(server, entry, rows)

    def test_all_models_failing_is_startup_error(self):
        plan = parse_chaos_spec("registry-corruption:mode=fail")
        with pytest.raises(ConfigurationError, match="every configured"):
            ModelRegistry.build(
                ["a", "b"],
                loader=lambda key: pytest.fail("loader must not run"),
                load_hook=plan.on_model_load,
            )


class TestConnectionDropScenario:
    def test_dropped_connections_are_retried_to_success(
        self, chaos_server, entry, rows
    ):
        """The first two connections die before any response bytes; a
        retrying client absorbs them and every request completes."""
        server, plan = chaos_server("conn-drop:after=0,count=2")
        policy = RetryPolicy(max_attempts=4, base_backoff_s=0.005,
                             max_backoff_s=0.01, jitter=0.0,
                             total_budget_s=30.0, seed=11)
        status, doc = client.predict(
            server.host, server.port, "toy", rows[0],
            timeout=5.0, retry=policy,
        )
        assert status == 200
        assert doc["attempts"] == 3, "both drops retried, third landed"
        assert plan.fired_total() == 2
        _assert_recovered(server, entry, rows)
        server.stop()
        assert server.daemon.drain_abandoned_total == 0
