"""The --chaos spec mini-language and injector determinism."""

import pytest

from repro.chaos import (
    ChaosFault,
    ChaosPlan,
    ComputeExceptionInjector,
    ConnectionDropInjector,
    LatencySpikeInjector,
    RegistryCorruptionInjector,
    parse_chaos_spec,
)
from repro.errors import ConfigurationError


class TestParsing:
    def test_multi_clause_spec(self):
        plan = parse_chaos_spec(
            "compute-exception:model=mlp-1,after=5,count=3;"
            "latency-spike:ms=400,after=2;"
            "conn-drop:p=0.1,seed=7"
        )
        first, second, third = plan.injectors
        assert isinstance(first, ComputeExceptionInjector)
        assert (first.model, first.after, first.count) == ("mlp-1", 5, 3)
        assert isinstance(second, LatencySpikeInjector)
        assert second.delay_s == pytest.approx(0.4)
        assert isinstance(third, ConnectionDropInjector)
        assert third.p == pytest.approx(0.1)
        assert third.seed == 7
        assert "latency-spike" in plan.describe()

    def test_registry_corruption_clause(self):
        plan = parse_chaos_spec("registry-corruption:model=mlp-1,mode=fail")
        (injector,) = plan.injectors
        assert isinstance(injector, RegistryCorruptionInjector)
        assert injector.mode == "fail"

    def test_unknown_injector_lists_catalogue(self):
        with pytest.raises(ConfigurationError, match="compute-exception"):
            parse_chaos_spec("explode-everything")

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown options"):
            parse_chaos_spec("compute-exception:afetr=3")

    def test_malformed_pair_rejected(self):
        with pytest.raises(ConfigurationError, match="key=value"):
            parse_chaos_spec("latency-spike:ms")

    def test_latency_spike_requires_ms(self):
        with pytest.raises(ConfigurationError, match="ms="):
            parse_chaos_spec("latency-spike:after=1")

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="no injector"):
            parse_chaos_spec(" ; ")

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="mode"):
            parse_chaos_spec("registry-corruption:mode=wreck")


class TestInjectorDeterminism:
    def test_window_fires_exact_range(self):
        injector = ComputeExceptionInjector(after=1, count=2)
        injector.before_compute("toy")  # event 0: outside window
        with pytest.raises(ChaosFault):
            injector.before_compute("toy")  # event 1
        with pytest.raises(ChaosFault):
            injector.before_compute("toy")  # event 2
        injector.before_compute("toy")  # event 3: window exhausted
        assert injector.fired == 2

    def test_model_filter_does_not_consume_window(self):
        injector = ComputeExceptionInjector(model="toy", after=0, count=1)
        injector.before_compute("other")  # filtered: no event advance
        with pytest.raises(ChaosFault):
            injector.before_compute("toy")

    def test_seeded_conn_drop_replays(self):
        injector = ConnectionDropInjector(p=0.5, seed=9)
        pattern = [injector.drop_connection(i) for i in range(20)]
        replay = ConnectionDropInjector(p=0.5, seed=9)
        assert [replay.drop_connection(i) for i in range(20)] == pattern
        other = ConnectionDropInjector(p=0.5, seed=10)
        assert [other.drop_connection(i) for i in range(20)] != pattern

    def test_latency_spike_returns_stall_instead_of_sleeping(self):
        injector = LatencySpikeInjector(delay_s=0.25, after=0, count=1)
        assert injector.before_compute("toy") == pytest.approx(0.25)
        assert injector.before_compute("toy") is None

    def test_plan_fired_total(self):
        plan = ChaosPlan([ConnectionDropInjector(after=0, count=2)])
        dropped = [plan.drop_connection(i) for i in range(4)]
        assert dropped == [True, True, False, False]
        assert plan.fired_total() == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ComputeExceptionInjector(after=-1)
        with pytest.raises(ConfigurationError):
            LatencySpikeInjector(delay_s=-0.1)
        with pytest.raises(ConfigurationError):
            ConnectionDropInjector(p=1.5)
        with pytest.raises(ConfigurationError):
            RegistryCorruptionInjector(mode="wreck")


class TestCorruptMode:
    def test_truncates_only_matching_artifacts(self, tmp_path):
        names = {
            "mlp-1-n600-s0-e3.npz": 16,          # payload: corrupted
            "mlp-1-n600-s0-e3.npz.manifest.json": 16,  # manifest too
            "other-n600-s0-e3.npz": 64,          # different model: untouched
            "mlp-1-n600-s0-e3.npz.corrupt": 64,  # quarantine: untouched
        }
        for fname in names:
            (tmp_path / fname).write_bytes(b"x" * 64)
        injector = RegistryCorruptionInjector(
            model="mlp-1", cache_dir=str(tmp_path)
        )
        injector.on_model_load("mlp-1")
        for fname, size in names.items():
            assert (tmp_path / fname).stat().st_size == size, fname
        assert injector.fired == 1

    def test_model_filter_skips_other_loads(self, tmp_path):
        (tmp_path / "other-n600-s0-e3.npz").write_bytes(b"x" * 64)
        injector = RegistryCorruptionInjector(
            model="mlp-1", cache_dir=str(tmp_path)
        )
        injector.on_model_load("other")
        assert (tmp_path / "other-n600-s0-e3.npz").stat().st_size == 64
        assert injector.fired == 0
