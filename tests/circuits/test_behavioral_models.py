"""Behavioral S/H and comparator models, element datatypes."""

import numpy as np
import pytest

from repro.circuits.comparator import ComparatorModel
from repro.circuits.components import Capacitor, CurrentSource, Resistor, VoltageSource
from repro.circuits.sample_hold import SampleHoldModel
from repro.errors import CircuitError


class TestSampleHoldModel:
    def test_ideal_passthrough(self):
        sh = SampleHoldModel()
        assert sh.sample(0.42) == pytest.approx(0.42)

    def test_gain_and_offset(self):
        sh = SampleHoldModel(gain=1.01, offset=-0.002)
        assert sh.sample(0.5) == pytest.approx(0.5 * 1.01 - 0.002)

    def test_droop(self):
        sh = SampleHoldModel(droop_rate=1e3)  # 1 mV per us
        held = sh.held_value(0.5, hold_time=100e-6)
        assert held == pytest.approx(0.4)

    def test_droop_clamps_at_zero(self):
        sh = SampleHoldModel(droop_rate=1e6)
        assert sh.held_value(0.1, hold_time=1.0) == pytest.approx(0.0)

    def test_aperture_jitter_deterministic_with_rng(self, rng):
        sh = SampleHoldModel(aperture_jitter=1e-12)
        a = sh.sample(0.5, slew_rate=1e9, rng=np.random.default_rng(0))
        b = sh.sample(0.5, slew_rate=1e9, rng=np.random.default_rng(0))
        assert a == b
        assert a != pytest.approx(0.5, abs=1e-9) or True  # jitter may be tiny

    def test_vectorised(self):
        sh = SampleHoldModel(gain=2.0)
        out = sh.sample(np.array([0.1, 0.2]))
        assert np.allclose(out, [0.2, 0.4])

    def test_rejects_bad_params(self):
        with pytest.raises(CircuitError):
            SampleHoldModel(gain=0.0)
        with pytest.raises(CircuitError):
            SampleHoldModel(droop_rate=-1.0)
        with pytest.raises(CircuitError):
            SampleHoldModel().held_value(0.5, hold_time=-1.0)


class TestComparatorModel:
    def test_offset_shifts_threshold(self):
        cmp = ComparatorModel(offset=0.01)
        assert cmp.effective_threshold(0.5) == pytest.approx(0.51)

    def test_delay_shifts_edge(self):
        cmp = ComparatorModel(delay=2e-9)
        assert cmp.output_edge_time(10e-9) == pytest.approx(12e-9)

    def test_randomised_draws_fixed_offset(self):
        cmp = ComparatorModel(offset=0.0, offset_sigma=0.01)
        inst = cmp.randomised(np.random.default_rng(3))
        assert inst.offset_sigma == pytest.approx(0.0)
        assert inst.offset != pytest.approx(0.0)

    def test_randomised_noop_without_sigma(self):
        cmp = ComparatorModel(offset=0.005)
        assert cmp.randomised(np.random.default_rng(0)) is cmp

    def test_rejects_bad_params(self):
        with pytest.raises(CircuitError):
            ComparatorModel(delay=-1e-9)
        with pytest.raises(CircuitError):
            ComparatorModel(offset_sigma=-0.1)


class TestElementDatatypes:
    def test_resistor_conductance(self):
        assert Resistor("a", "b", 1e3).conductance == pytest.approx(1e-3)

    def test_resistor_validation(self):
        with pytest.raises(CircuitError):
            Resistor("a", "b", -1.0)
        with pytest.raises(CircuitError):
            Resistor("a", "a", 1e3)

    def test_capacitor_validation(self):
        assert Capacitor("n", 1e-12).initial_voltage == pytest.approx(0.0)
        with pytest.raises(CircuitError):
            Capacitor("n", 0.0)

    def test_source_validation(self):
        with pytest.raises(CircuitError):
            VoltageSource("n", "n", 1.0)
        with pytest.raises(CircuitError):
            CurrentSource("n", "n", 1.0)
