"""MNA DC solver."""

import numpy as np
import pytest

from repro.circuits.mna import DCCircuit
from repro.errors import CircuitError


class TestVoltageDivider:
    def test_two_resistor_divider(self):
        c = DCCircuit()
        c.add_voltage_source("in", 1.0)
        c.add_resistor("in", "mid", 1e3)
        c.add_resistor("mid", "gnd", 3e3)
        sol = c.solve()
        assert sol.voltage("mid") == pytest.approx(0.75)

    def test_source_current(self):
        c = DCCircuit()
        c.add_voltage_source("in", 2.0, name="V1")
        c.add_resistor("in", "gnd", 1e3)
        sol = c.solve()
        assert sol.source_currents["V1"] == pytest.approx(2e-3)

    def test_branch_current_and_power(self):
        c = DCCircuit()
        c.add_voltage_source("in", 1.0)
        r = c.add_resistor("in", "gnd", 2e3)
        sol = c.solve()
        assert sol.branch_current(r) == pytest.approx(0.5e-3)
        assert sol.branch_power(r) == pytest.approx(0.5e-3)


class TestParallelAndSuperposition:
    def test_parallel_resistors(self):
        c = DCCircuit()
        c.add_voltage_source("in", 1.0, name="V")
        c.add_resistor("in", "gnd", 1e3)
        c.add_resistor("in", "gnd", 1e3)
        sol = c.solve()
        assert sol.source_currents["V"] == pytest.approx(2e-3)

    def test_current_source_into_resistor(self):
        c = DCCircuit()
        c.add_current_source("n", 1e-3)
        c.add_resistor("n", "gnd", 2e3)
        sol = c.solve()
        assert sol.voltage("n") == pytest.approx(2.0)

    def test_two_sources_superpose(self):
        c = DCCircuit()
        c.add_voltage_source("a", 1.0)
        c.add_voltage_source("b", 0.0)
        c.add_resistor("a", "mid", 1e3)
        c.add_resistor("b", "mid", 1e3)
        sol = c.solve()
        assert sol.voltage("mid") == pytest.approx(0.5)


class TestCrossbarStyle:
    def test_mini_crossbar_matches_ideal(self, rng):
        """A 4x4 crossbar with negligible wire resistance reproduces G^T V."""
        rows, cols = 4, 4
        g = rng.uniform(1e-6, 2e-5, (rows, cols))
        v = rng.uniform(0.0, 1.0, rows)
        c = DCCircuit()
        for i in range(rows):
            c.add_voltage_source(f"r{i}", float(v[i]), name=f"V{i}")
        for j in range(cols):
            c.add_resistor(f"c{j}", "gnd", 1e-6, name=f"sense{j}")
            for i in range(rows):
                c.add_resistor(f"r{i}", f"c{j}", 1.0 / g[i, j])
        sol = c.solve()
        for j in range(cols):
            current = sol.voltage(f"c{j}") / 1e-6
            assert current == pytest.approx(float(v @ g[:, j]), rel=1e-3)

    def test_sparse_path_matches_dense(self, rng):
        """Grids big enough for the sparse branch agree with numpy math."""
        n = 40  # 40x40 ladder -> >600 unknowns triggers sparse
        c = DCCircuit()
        c.add_voltage_source("n0_0", 1.0)
        for i in range(n):
            for j in range(n):
                if i + 1 < n:
                    c.add_resistor(f"n{i}_{j}", f"n{i + 1}_{j}", 1e3)
                if j + 1 < n:
                    c.add_resistor(f"n{i}_{j}", f"n{i}_{j + 1}", 1e3)
        c.add_resistor(f"n{n - 1}_{n - 1}", "gnd", 1e3)
        sol = c.solve()
        # Sanity: monotone potential drop from source to sink corner.
        assert 0 < sol.voltage(f"n{n - 1}_{n - 1}") < 1.0


class TestValidation:
    def test_empty_circuit(self):
        with pytest.raises(CircuitError):
            DCCircuit().solve()

    def test_floating_node_is_singular(self):
        c = DCCircuit()
        c.add_voltage_source("in", 1.0)
        c.add_resistor("in", "gnd", 1e3)
        c.add_resistor("float_a", "float_b", 1e3)
        with pytest.raises(CircuitError):
            c.solve()

    def test_rejects_nonpositive_resistor(self):
        with pytest.raises(CircuitError):
            DCCircuit().add_resistor("a", "b", 0.0)

    def test_rejects_self_loop(self):
        with pytest.raises(CircuitError):
            DCCircuit().add_resistor("a", "a", 1e3)

    def test_unknown_node_lookup(self):
        c = DCCircuit()
        c.add_voltage_source("in", 1.0)
        c.add_resistor("in", "gnd", 1e3)
        sol = c.solve()
        with pytest.raises(CircuitError):
            sol.voltage("nope")
