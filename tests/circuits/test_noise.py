"""Thermal-noise floors of the sampled datapath."""

import math

import pytest

from repro.circuits.noise import (
    ktc_noise_voltage,
    minimum_capacitance_for_bits,
    minimum_capacitance_for_snr,
    sampled_noise_charge,
)
from repro.errors import CircuitError


class TestKtcNoise:
    def test_textbook_value_at_100ff(self):
        # sqrt(kT/C) at 300 K, 100 fF is ~203 uV — the classic number.
        assert ktc_noise_voltage(100e-15) == pytest.approx(203e-6, rel=0.01)

    def test_scales_inverse_sqrt(self):
        assert ktc_noise_voltage(25e-15) == pytest.approx(
            2 * ktc_noise_voltage(100e-15)
        )

    def test_colder_is_quieter(self):
        assert ktc_noise_voltage(100e-15, temperature=77.0) < ktc_noise_voltage(
            100e-15, temperature=300.0
        )

    def test_noise_charge_consistent(self):
        c = 100e-15
        assert sampled_noise_charge(c) == pytest.approx(c * ktc_noise_voltage(c))

    def test_validation(self):
        with pytest.raises(CircuitError):
            ktc_noise_voltage(0.0)
        with pytest.raises(CircuitError):
            ktc_noise_voltage(1e-15, temperature=0.0)
        with pytest.raises(CircuitError):
            sampled_noise_charge(-1e-15)


class TestCapacitorSizing:
    def test_snr_sizing_round_trip(self):
        c = minimum_capacitance_for_snr(full_scale=1.0, snr_db=50.0)
        achieved_snr = 20 * math.log10(1.0 / ktc_noise_voltage(c))
        assert achieved_snr == pytest.approx(50.0, abs=0.01)

    def test_bits_sizing_monotone(self):
        c8 = minimum_capacitance_for_bits(1.0, 8)
        c10 = minimum_capacitance_for_bits(1.0, 10)
        assert c10 > c8

    def test_paper_capacitor_supports_8_bits(self):
        """The paper's 100 fF C_cog comfortably exceeds the kT/C floor
        for 8-bit operation at a 1 V swing — i.e. noise does not limit
        the published sizing; linearity does (DESIGN.md section 1)."""
        c_min = minimum_capacitance_for_bits(1.0, 8)
        assert c_min < 100e-15

    def test_scaling_floor_exists(self):
        """Shrinking C_cog for energy eventually hits the noise floor:
        12-bit operation already needs more than 100 fF at 1 V."""
        assert minimum_capacitance_for_bits(1.0, 12) > 100e-15

    def test_validation(self):
        with pytest.raises(CircuitError):
            minimum_capacitance_for_snr(0.0, 50.0)
        with pytest.raises(CircuitError):
            minimum_capacitance_for_bits(1.0, 0.0)
