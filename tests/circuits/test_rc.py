"""Closed-form RC responses."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.rc import (
    TheveninEquivalent,
    rc_charge,
    rc_discharge,
    rc_time_to_reach,
    rc_value,
    thevenin,
)
from repro.errors import CircuitError


class TestRcValue:
    def test_initial_condition(self):
        assert rc_value(0.0, v0=0.3, v_inf=1.0, tau=1e-9) == pytest.approx(0.3)

    def test_asymptote(self):
        assert rc_value(1e-3, v0=0.0, v_inf=1.0, tau=1e-9) == pytest.approx(1.0)

    def test_one_time_constant(self):
        v = rc_value(1e-9, v0=0.0, v_inf=1.0, tau=1e-9)
        assert v == pytest.approx(1 - math.exp(-1))

    def test_vectorised(self):
        t = np.array([0.0, 1e-9, 2e-9])
        v = rc_value(t, 0.0, 1.0, 1e-9)
        assert v.shape == (3,)
        assert np.all(np.diff(v) > 0)

    def test_rejects_negative_time(self):
        with pytest.raises(CircuitError):
            rc_value(-1e-9, 0.0, 1.0, 1e-9)

    def test_rejects_nonpositive_tau(self):
        with pytest.raises(CircuitError):
            rc_value(1e-9, 0.0, 1.0, 0.0)


class TestChargeDischarge:
    def test_charge_is_eq1_form(self):
        # V = V_s (1 - e^{-t/tau}) — the paper's Eq. 1.
        v = rc_charge(10e-9, v_target=1.0, tau=10e-9)
        assert v == pytest.approx(1 - math.exp(-1))

    def test_discharge_symmetric(self):
        up = rc_charge(5e-9, 1.0, 7e-9)
        down = rc_discharge(5e-9, 1.0, 7e-9)
        assert up + down == pytest.approx(1.0)


class TestTimeToReach:
    def test_inverts_charge(self):
        tau = 10e-9
        v = rc_charge(23e-9, 1.0, tau)
        t = rc_time_to_reach(v, v0=0.0, v_inf=1.0, tau=tau)
        assert t == pytest.approx(23e-9, rel=1e-9)

    def test_unreachable_target(self):
        # Charging toward 1 V can never reach 2 V.
        assert rc_time_to_reach(2.0, 0.0, 1.0, 1e-9) == math.inf

    def test_moving_away(self):
        # Discharging from 0.5 to 0 never reaches 0.8.
        assert rc_time_to_reach(0.8, 0.5, 0.0, 1e-9) == math.inf

    def test_already_there(self):
        assert rc_time_to_reach(0.5, 0.5, 1.0, 1e-9) == pytest.approx(0.0)

    @given(
        frac=st.floats(min_value=0.01, max_value=0.99),
        tau=st.floats(min_value=1e-12, max_value=1e-6),
    )
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, frac, tau):
        """time -> voltage -> time is the identity on a charging node."""
        t = -tau * math.log(1 - frac)
        v = rc_charge(t, 1.0, tau)
        back = rc_time_to_reach(v, 0.0, 1.0, tau)
        assert back == pytest.approx(t, rel=1e-6)


class TestThevenin:
    def test_eq2_two_sources(self):
        # The paper's Eq. 2 with V_in1, V_in2 through G_1, G_2.
        eq = thevenin([0.4, 0.8], [1e-5, 3e-5])
        assert eq.voltage == pytest.approx((0.4e-5 + 0.8 * 3e-5) / 4e-5)
        assert eq.resistance == pytest.approx(1.0 / 4e-5)

    def test_voltage_is_convex_combination(self, rng):
        v = rng.random(8)
        g = rng.random(8) + 0.1
        eq = thevenin(v, g)
        assert v.min() <= eq.voltage <= v.max()

    def test_zero_branches_ignored(self):
        eq = thevenin([1.0, 0.5], [0.0, 2e-5])
        assert eq.voltage == pytest.approx(0.5)

    def test_rejects_all_zero(self):
        with pytest.raises(CircuitError):
            thevenin([1.0], [0.0])

    def test_rejects_negative_conductance(self):
        with pytest.raises(CircuitError):
            thevenin([1.0], [-1e-5])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(CircuitError):
            thevenin([1.0, 2.0], [1e-5])

    def test_tau(self):
        eq = TheveninEquivalent(voltage=1.0, resistance=1e3)
        assert eq.tau(1e-12) == pytest.approx(1e-9)

    def test_tau_rejects_nonpositive_cap(self):
        with pytest.raises(CircuitError):
            TheveninEquivalent(1.0, 1e3).tau(0.0)
