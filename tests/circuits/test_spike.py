"""Spike signal types."""

import numpy as np
import pytest

from repro.circuits.spike import NO_SPIKE, SingleSpike, SpikeTrain
from repro.errors import EncodingError


class TestSingleSpike:
    def test_fired(self):
        assert SingleSpike(time=10e-9).fired
        assert not NO_SPIKE.fired

    def test_within(self):
        s = SingleSpike(time=50e-9)
        assert s.within(100e-9)
        assert not s.within(40e-9)
        assert not NO_SPIKE.within(100e-9)

    def test_delayed(self):
        s = SingleSpike(time=10e-9).delayed(5e-9)
        assert s.time == pytest.approx(15e-9)

    def test_delayed_no_spike_is_noop(self):
        assert NO_SPIKE.delayed(5e-9) is NO_SPIKE

    def test_waveform_points(self):
        pts = SingleSpike(time=10e-9, width=1e-9).waveform_points(100e-9)
        assert pts[0] == pytest.approx((0.0, 0.0))
        assert pts[1][1] == pytest.approx(1.0)

    def test_waveform_points_no_spike(self):
        pts = NO_SPIKE.waveform_points(100e-9)
        assert all(level == pytest.approx(0.0) for _, level in pts)

    def test_rejects_negative_time(self):
        with pytest.raises(EncodingError):
            SingleSpike(time=-1e-9)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(EncodingError):
            SingleSpike(time=1e-9, width=0.0)


class TestSpikeTrain:
    def test_uniform(self):
        train = SpikeTrain.uniform(4, window=100e-9)
        assert train.count == 4
        assert train.times[0] == pytest.approx(0.0)
        assert train.times[-1] == pytest.approx(75e-9)

    def test_uniform_zero(self):
        assert SpikeTrain.uniform(0, 100e-9).count == 0

    def test_rate(self):
        train = SpikeTrain.uniform(10, window=100e-9)
        assert train.rate(100e-9) == pytest.approx(1e8)

    def test_active_time_scales_with_count(self):
        # The energy-coupling property the single-spike format removes.
        short = SpikeTrain.uniform(2, 100e-9, width=1e-9)
        long = SpikeTrain.uniform(20, 100e-9, width=1e-9)
        assert long.active_time() == pytest.approx(10 * short.active_time())

    def test_from_times(self):
        train = SpikeTrain.from_times([1e-9, 5e-9, 9e-9])
        assert train.count == 3

    def test_counts_in_bins(self):
        train = SpikeTrain.from_times([1e-9, 2e-9, 8e-9])
        counts = train.counts_in_bins(np.array([0.0, 5e-9, 10e-9]))
        assert list(counts) == [2, 1]

    def test_rejects_unsorted(self):
        with pytest.raises(EncodingError):
            SpikeTrain(times=(5e-9, 1e-9))

    def test_rejects_negative_times(self):
        with pytest.raises(EncodingError):
            SpikeTrain(times=(-1e-9,))

    def test_rejects_negative_count(self):
        with pytest.raises(EncodingError):
            SpikeTrain.uniform(-1, 1e-6)

    def test_rejects_bad_window(self):
        with pytest.raises(EncodingError):
            SpikeTrain.uniform(3, 0.0)
        with pytest.raises(EncodingError):
            SpikeTrain.uniform(3, 1e-6).rate(0.0)
