"""Event-driven transient engine."""

import math

import pytest

from repro.circuits.transient import (
    Branch,
    Comparator,
    PiecewiseConstantSource,
    PulseShaper,
    RCNodeSpec,
    SampleHold,
    SwitchSpec,
    TransientEngine,
)
from repro.errors import CircuitError


def simple_rc_engine(tau_r=1e3, cap=1e-9, t_stop=10e-6):
    eng = TransientEngine(t_stop=t_stop, points_per_segment=512)
    eng.add_source(PiecewiseConstantSource.constant("vs", 1.0))
    eng.add_rc_node(RCNodeSpec("out", cap, (Branch("vs", tau_r),)))
    return eng


class TestRCCharging:
    def test_matches_closed_form(self):
        eng = simple_rc_engine()
        res = eng.run()
        tau = 1e3 * 1e-9
        for t in (0.5e-6, 1e-6, 3e-6):
            expected = 1.0 - math.exp(-t / tau)
            assert res.value_at("out", t) == pytest.approx(expected, rel=1e-3)

    def test_initial_condition(self):
        eng = TransientEngine(t_stop=1e-6)
        eng.add_source(PiecewiseConstantSource.constant("vs", 1.0))
        eng.add_rc_node(RCNodeSpec("out", 1e-9, (Branch("vs", 1e3),), v0=0.4))
        res = eng.run()
        assert res.value_at("out", 0.0) == pytest.approx(0.4, abs=1e-3)

    def test_source_step_retargets(self):
        eng = TransientEngine(t_stop=10e-6)
        eng.add_source(
            PiecewiseConstantSource("vs", ((0.0, 1.0), (5e-6, 0.0)))
        )
        eng.add_rc_node(RCNodeSpec("out", 1e-9, (Branch("vs", 100.0),)))
        res = eng.run()
        assert res.value_at("out", 4.9e-6) == pytest.approx(1.0, abs=1e-3)
        assert res.value_at("out", 9.9e-6) == pytest.approx(0.0, abs=1e-3)


class TestSwitches:
    def test_switch_gates_branch(self):
        eng = TransientEngine(t_stop=2e-6)
        eng.add_source(PiecewiseConstantSource.constant("vs", 1.0))
        eng.add_switch(SwitchSpec("sw", ((0.0, False), (1e-6, True))))
        eng.add_rc_node(RCNodeSpec("out", 1e-9, (Branch("vs", 100.0, switch="sw"),)))
        res = eng.run()
        assert res.value_at("out", 0.9e-6) == pytest.approx(0.0, abs=1e-6)
        assert res.value_at("out", 1.9e-6) == pytest.approx(1.0, abs=1e-3)

    def test_floating_node_holds(self):
        eng = TransientEngine(t_stop=2e-6)
        eng.add_source(PiecewiseConstantSource.constant("vs", 1.0))
        eng.add_switch(SwitchSpec("sw", ((0.0, True), (1e-6, False))))
        eng.add_rc_node(RCNodeSpec("out", 1e-9, (Branch("vs", 100.0, switch="sw"),)))
        res = eng.run()
        held = res.value_at("out", 1.5e-6)
        assert held == pytest.approx(1.0, abs=1e-3)


class TestSampleHold:
    def test_captures_ramp(self):
        eng = simple_rc_engine()
        eng.add_sample_hold(SampleHold("out", "held", (1e-6,)))
        res = eng.run()
        tau = 1e-6
        expected = 1.0 - math.exp(-1e-6 / tau)
        assert res.value_at("held", 5e-6) == pytest.approx(expected, rel=1e-3)

    def test_initial_value_before_sampling(self):
        eng = simple_rc_engine()
        eng.add_sample_hold(SampleHold("out", "held", (5e-6,), initial=0.2))
        res = eng.run()
        assert res.value_at("held", 1e-6) == pytest.approx(0.2)


class TestComparator:
    def test_fires_at_crossing(self):
        eng = simple_rc_engine()
        eng.add_source(PiecewiseConstantSource.constant("ref", 0.5))
        eng.add_comparator(Comparator(pos="out", neg="ref", output="cmp"))
        res = eng.run()
        spikes = res.spike_times("cmp")
        tau = 1e-6
        expected = -tau * math.log(0.5)
        assert len(spikes) == 1
        assert spikes[0] == pytest.approx(expected, rel=1e-4)

    def test_enable_window_blocks_early(self):
        eng = simple_rc_engine()
        eng.add_source(PiecewiseConstantSource.constant("ref", 0.5))
        eng.add_comparator(
            Comparator(pos="out", neg="ref", output="cmp", enable=(5e-6, 10e-6))
        )
        res = eng.run()
        spikes = res.spike_times("cmp")
        assert len(spikes) == 1
        assert spikes[0] == pytest.approx(5e-6, rel=1e-6)

    def test_output_drops_at_window_close(self):
        eng = simple_rc_engine()
        eng.add_source(PiecewiseConstantSource.constant("ref", 0.5))
        eng.add_comparator(
            Comparator(pos="out", neg="ref", output="cmp", enable=(0.0, 5e-6))
        )
        res = eng.run()
        assert res.value_at("cmp", 9e-6) == pytest.approx(0.0)

    def test_rejects_bad_window(self):
        with pytest.raises(CircuitError):
            Comparator(pos="a", neg="b", output="c", enable=(1.0, 1.0))


class TestPulseShaper:
    def test_fixed_width_pulse(self):
        eng = simple_rc_engine()
        eng.add_source(PiecewiseConstantSource.constant("ref", 0.5))
        eng.add_comparator(Comparator(pos="out", neg="ref", output="cmp"))
        eng.add_pulse_shaper(PulseShaper("cmp", "spk", width=50e-9))
        res = eng.run()
        edges = res.waveform("spk").pulse_edges()
        assert len(edges) == 1
        rise, fall = edges[0]
        assert fall - rise == pytest.approx(50e-9, rel=1e-3)

    def test_rejects_bad_width(self):
        with pytest.raises(CircuitError):
            PulseShaper("a", "b", width=0.0)


class TestValidation:
    def test_empty_engine(self):
        with pytest.raises(CircuitError):
            TransientEngine(t_stop=1e-6).run()

    def test_duplicate_driver(self):
        eng = TransientEngine(t_stop=1e-6)
        eng.add_source(PiecewiseConstantSource.constant("n", 1.0))
        with pytest.raises(CircuitError):
            eng.add_source(PiecewiseConstantSource.constant("n", 0.5))

    def test_unknown_switch(self):
        eng = TransientEngine(t_stop=1e-6)
        eng.add_source(PiecewiseConstantSource.constant("vs", 1.0))
        eng.add_rc_node(RCNodeSpec("out", 1e-9, (Branch("vs", 1e3, switch="nope"),)))
        with pytest.raises(CircuitError):
            eng.run()

    def test_branch_to_undriven_node(self):
        eng = TransientEngine(t_stop=1e-6)
        eng.add_source(PiecewiseConstantSource.constant("vs", 1.0))
        eng.add_rc_node(RCNodeSpec("out", 1e-9, (Branch("ghost", 1e3),)))
        with pytest.raises(CircuitError):
            eng.run()

    def test_dynamic_dynamic_coupling_rejected(self):
        eng = TransientEngine(t_stop=1e-6)
        eng.add_source(PiecewiseConstantSource.constant("vs", 1.0))
        eng.add_rc_node(RCNodeSpec("a", 1e-9, (Branch("vs", 1e3), Branch("b", 1e3))))
        eng.add_rc_node(RCNodeSpec("b", 1e-9, (Branch("vs", 1e3),)))
        with pytest.raises(CircuitError):
            eng.run()

    def test_ground_cannot_be_driven(self):
        eng = TransientEngine(t_stop=1e-6)
        with pytest.raises(CircuitError):
            eng.add_source(PiecewiseConstantSource.constant("gnd", 1.0))

    def test_bad_time_range(self):
        with pytest.raises(CircuitError):
            TransientEngine(t_stop=0.0)
