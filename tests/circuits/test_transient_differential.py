"""Differential testing: transient engine vs scipy ODE integration.

The piecewise-exponential engine claims *exact* solutions for first-order
networks.  These tests integrate the same circuits numerically with
``scipy.integrate.solve_ivp`` (tight tolerances) and require agreement,
including across switch events and randomised topologies — an
independent oracle with none of the engine's assumptions.
"""

import numpy as np
import pytest
from scipy.integrate import solve_ivp

from repro.circuits.transient import (
    Branch,
    PiecewiseConstantSource,
    RCNodeSpec,
    SwitchSpec,
    TransientEngine,
)


def integrate_rc(
    t_eval,
    capacitance,
    branches,
    source_of,
    switch_state,
    v0=0.0,
):
    """Numerically integrate one RC node.

    ``branches`` is [(source_name, resistance, switch_name or None)];
    ``source_of(name, t)`` gives the driving voltage; ``switch_state``
    maps (switch_name, t) -> bool.
    """

    def dv_dt(t, v):
        current = 0.0
        for name, resistance, switch in branches:
            if switch is not None and not switch_state(switch, t):
                continue
            current += (source_of(name, t) - v[0]) / resistance
        return [current / capacitance]

    solution = solve_ivp(
        dv_dt,
        (float(t_eval[0]), float(t_eval[-1])),
        [v0],
        t_eval=t_eval,
        rtol=1e-10,
        atol=1e-12,
        max_step=float(t_eval[-1]) / 2000,
    )
    return solution.y[0]


class TestSingleBranch:
    def test_plain_charge(self):
        eng = TransientEngine(t_stop=5e-6, points_per_segment=256)
        eng.add_source(PiecewiseConstantSource.constant("vs", 1.0))
        eng.add_rc_node(RCNodeSpec("out", 1e-9, (Branch("vs", 1e3),)))
        result = eng.run()
        t_eval = np.linspace(0, 5e-6, 200)
        reference = integrate_rc(
            t_eval, 1e-9, [("vs", 1e3, None)],
            lambda n, t: 1.0, lambda s, t: False,
        )
        measured = np.array([result.value_at("out", t) for t in t_eval])
        assert np.allclose(measured, reference, atol=2e-4)

    def test_stepped_source(self):
        schedule = ((0.0, 1.0), (2e-6, 0.3), (4e-6, 0.8))
        eng = TransientEngine(t_stop=6e-6, points_per_segment=256)
        eng.add_source(PiecewiseConstantSource("vs", schedule))
        eng.add_rc_node(RCNodeSpec("out", 2e-9, (Branch("vs", 500.0),)))
        result = eng.run()

        def source(name, t):
            level = schedule[0][1]
            for st, sv in schedule:
                if t >= st:
                    level = sv
            return level

        t_eval = np.linspace(0, 6e-6, 300)
        reference = integrate_rc(
            t_eval, 2e-9, [("vs", 500.0, None)], source, lambda s, t: False
        )
        measured = np.array([result.value_at("out", t) for t in t_eval])
        assert np.allclose(measured, reference, atol=2e-4)


class TestSwitchedTopologies:
    def test_switched_discharge_path(self):
        switch_times = ((0.0, False), (1e-6, True), (3e-6, False))
        eng = TransientEngine(t_stop=5e-6, points_per_segment=256)
        eng.add_source(PiecewiseConstantSource.constant("vs", 1.0))
        eng.add_switch(SwitchSpec("sw", switch_times))
        eng.add_rc_node(
            RCNodeSpec(
                "out", 1e-9,
                (Branch("vs", 2e3), Branch("gnd", 1e3, switch="sw")),
            )
        )
        result = eng.run()

        def state(name, t):
            current = False
            for st, sv in switch_times:
                if t >= st:
                    current = sv
            return current

        def source(name, t):
            return 1.0 if name == "vs" else 0.0

        t_eval = np.linspace(0, 5e-6, 300)
        reference = integrate_rc(
            t_eval, 1e-9,
            [("vs", 2e3, None), ("gnd", 1e3, "sw")],
            source, state,
        )
        measured = np.array([result.value_at("out", t) for t in t_eval])
        assert np.allclose(measured, reference, atol=2e-4)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomised_multibranch(self, seed):
        """Random sources/resistances/switch schedules, one RC node."""
        rng = np.random.default_rng(seed)
        t_stop = 4e-6
        n_branches = int(rng.integers(2, 5))
        sources = []
        branches = []
        schedules = {}
        for b in range(n_branches):
            name = f"src{b}"
            level = float(rng.uniform(0.1, 1.0))
            sources.append((name, level))
            switch = None
            if rng.random() < 0.5:
                switch = f"sw{b}"
                toggle = float(rng.uniform(0.5e-6, 3e-6))
                schedules[switch] = ((0.0, bool(rng.random() < 0.5)),
                                     (toggle, bool(rng.random() < 0.5)))
            branches.append((name, float(rng.uniform(200, 5e3)), switch))
        cap = float(rng.uniform(0.5e-9, 3e-9))

        eng = TransientEngine(t_stop=t_stop, points_per_segment=256)
        for name, level in sources:
            eng.add_source(PiecewiseConstantSource.constant(name, level))
        for switch, schedule in schedules.items():
            eng.add_switch(SwitchSpec(switch, schedule))
        eng.add_rc_node(
            RCNodeSpec(
                "out", cap,
                tuple(Branch(n, r, switch=s) for n, r, s in branches),
            )
        )
        result = eng.run()

        level_of = dict(sources)

        def source(name, t):
            return level_of[name]

        def state(name, t):
            current = False
            for st, sv in schedules[name]:
                if t >= st:
                    current = sv
            return current

        t_eval = np.linspace(0, t_stop, 300)
        reference = integrate_rc(t_eval, cap, branches, source, state)
        measured = np.array([result.value_at("out", t) for t in t_eval])
        assert np.allclose(measured, reference, atol=5e-4)
