"""Waveform container."""

import numpy as np
import pytest

from repro.circuits.waveform import Waveform
from repro.errors import CircuitError, ShapeError


@pytest.fixture
def ramp():
    return Waveform([0.0, 1.0], [0.0, 1.0])


class TestConstruction:
    def test_from_function(self):
        w = Waveform.from_function(np.sin, 0.0, np.pi, n=100)
        assert len(w) == 100
        assert w.maximum() == pytest.approx(1.0, abs=1e-3)

    def test_constant(self):
        w = Waveform.constant(0.7, 0.0, 2.0)
        assert w(1.3) == pytest.approx(0.7)

    def test_step(self):
        w = Waveform.step(0.5, 0.0, 1.0, low=0.0, high=1.0)
        assert w(0.4) == pytest.approx(0.0)
        assert w(0.6) == pytest.approx(1.0)

    def test_rejects_single_sample(self):
        with pytest.raises(CircuitError):
            Waveform([0.0], [1.0])

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ShapeError):
            Waveform([0.0, 1.0], [1.0])

    def test_rejects_decreasing_time(self):
        with pytest.raises(CircuitError):
            Waveform([1.0, 0.0], [0.0, 1.0])

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            Waveform(np.zeros((2, 2)), np.zeros((2, 2)))


class TestEvaluation:
    def test_interpolation(self, ramp):
        assert ramp(0.25) == pytest.approx(0.25)

    def test_clamps_outside(self, ramp):
        assert ramp(-1.0) == pytest.approx(0.0)
        assert ramp(2.0) == pytest.approx(1.0)

    def test_array_call(self, ramp):
        out = ramp(np.array([0.0, 0.5, 1.0]))
        assert np.allclose(out, [0.0, 0.5, 1.0])

    def test_sample(self, ramp):
        resampled = ramp.sample(11)
        assert len(resampled) == 11
        assert resampled(0.5) == pytest.approx(0.5)

    def test_window(self, ramp):
        cut = ramp.window(0.25, 0.75)
        assert cut.t_start == pytest.approx(0.25)
        assert cut.t_end == pytest.approx(0.75)
        assert cut(0.5) == pytest.approx(0.5)

    def test_window_rejects_outside(self, ramp):
        with pytest.raises(CircuitError):
            ramp.window(-0.5, 0.5)


class TestArithmetic:
    def test_add_scalar(self, ramp):
        assert (ramp + 1.0)(0.5) == pytest.approx(1.5)

    def test_subtract_waveforms(self, ramp):
        diff = ramp - ramp
        assert diff.maximum() == pytest.approx(0.0)

    def test_multiply(self, ramp):
        assert (ramp * 2.0)(0.5) == pytest.approx(1.0)

    def test_negate(self, ramp):
        assert (-ramp)(1.0) == pytest.approx(-1.0)

    def test_merged_time_base(self):
        a = Waveform([0.0, 1.0], [0.0, 1.0])
        b = Waveform([0.0, 0.5, 1.0], [1.0, 0.0, 1.0])
        total = a + b
        assert total(0.5) == pytest.approx(0.5)


class TestAnalysis:
    def test_mean_of_ramp(self, ramp):
        assert ramp.mean() == pytest.approx(0.5)

    def test_integral(self, ramp):
        assert ramp.integral() == pytest.approx(0.5)

    def test_rising_crossing(self, ramp):
        crossings = ramp.rising_crossings(0.3)
        assert len(crossings) == 1
        assert crossings[0] == pytest.approx(0.3)

    def test_falling_crossing(self):
        w = Waveform([0.0, 1.0], [1.0, 0.0])
        assert w.falling_crossings(0.5) == [pytest.approx(0.5)]

    def test_first_rising_none(self, ramp):
        assert ramp.first_rising_crossing(2.0) is None

    def test_pulse_edges(self):
        w = Waveform(
            [0.0, 1.0, 1.0, 2.0, 2.0, 3.0], [0.0, 0.0, 1.0, 1.0, 0.0, 0.0]
        )
        edges = w.pulse_edges()
        assert len(edges) == 1
        rise, fall = edges[0]
        assert rise == pytest.approx(1.0)
        assert fall == pytest.approx(2.0)

    def test_pulse_without_fall_uses_end(self):
        w = Waveform([0.0, 1.0, 1.0, 2.0], [0.0, 0.0, 1.0, 1.0])
        edges = w.pulse_edges()
        assert edges[0][1] == pytest.approx(2.0)
