"""Shared fixtures."""

import numpy as np
import pytest

from repro.config import CircuitParameters


@pytest.fixture
def rng():
    """Deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def paper_params():
    """The paper-literal operating point."""
    return CircuitParameters.paper()


@pytest.fixture
def calibrated_params():
    """The calibrated (linear-regime) operating point."""
    return CircuitParameters.calibrated()
