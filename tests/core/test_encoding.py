"""Single-spiking codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.spike import NO_SPIKE, SingleSpike
from repro.core.encoding import SingleSpikeCodec
from repro.errors import EncodingError


@pytest.fixture
def codec():
    return SingleSpikeCodec(t_max=80e-9, slice_length=100e-9)


class TestArrayInterface:
    def test_full_scale(self, codec):
        assert codec.times_from_values(1.0) == pytest.approx(80e-9)

    def test_zero(self, codec):
        assert codec.times_from_values(0.0) == pytest.approx(0.0)

    def test_vectorised(self, codec, rng):
        v = rng.random((3, 5))
        t = codec.times_from_values(v)
        assert t.shape == (3, 5)
        assert np.allclose(t, v * 80e-9)

    def test_rejects_out_of_range(self, codec):
        with pytest.raises(EncodingError):
            codec.times_from_values(1.5)
        with pytest.raises(EncodingError):
            codec.times_from_values(-0.1)

    def test_inverse(self, codec):
        assert codec.values_from_times(40e-9) == pytest.approx(0.5)

    def test_saturating_decode(self, codec):
        assert codec.saturating_values_from_times(200e-9) == pytest.approx(1.0)

    @given(v=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, v):
        codec = SingleSpikeCodec()
        t = codec.times_from_values(v)
        assert codec.values_from_times(t) == pytest.approx(v, abs=1e-12)


class TestObjectInterface:
    def test_encode_produces_spike(self, codec):
        spike = codec.encode(0.5)
        assert spike.fired
        assert spike.time == pytest.approx(40e-9)

    def test_sparse_zero(self, codec):
        assert codec.encode(0.0) is NO_SPIKE

    def test_dense_zero(self):
        codec = SingleSpikeCodec(sparse_zero=False)
        spike = codec.encode(0.0)
        assert spike.fired
        assert spike.time == pytest.approx(0.0)

    def test_decode_no_spike(self, codec):
        assert codec.decode(NO_SPIKE) == pytest.approx(0.0)

    def test_decode_rejects_outside_slice(self, codec):
        with pytest.raises(EncodingError):
            codec.decode(SingleSpike(time=150e-9))

    def test_vector_round_trip(self, codec, rng):
        values = rng.random(16)
        values[3] = 0.0
        spikes = codec.encode_vector(values)
        decoded = codec.decode_vector(spikes)
        assert np.allclose(decoded, values, atol=1e-12)

    def test_spike_times_or_nan(self, codec):
        spikes = [codec.encode(0.5), NO_SPIKE]
        times = codec.spike_times_or_nan(spikes)
        assert times[0] == pytest.approx(40e-9)
        assert np.isnan(times[1])


class TestValidation:
    def test_t_max_within_slice(self):
        with pytest.raises(EncodingError):
            SingleSpikeCodec(t_max=200e-9, slice_length=100e-9)

    def test_positive_parameters(self):
        with pytest.raises(EncodingError):
            SingleSpikeCodec(t_max=0.0)
        with pytest.raises(EncodingError):
            SingleSpikeCodec(spike_width=0.0)

    def test_width_independence(self):
        """The encoded value is independent of the spike width — the
        property the paper highlights for the single-spiking format."""
        narrow = SingleSpikeCodec(spike_width=1e-9)
        wide = SingleSpikeCodec(spike_width=5e-9)
        assert narrow.encode(0.7).time == wide.encode(0.7).time
