"""Crossbar-scale ReSiPE engine."""

import numpy as np
import pytest

from repro.core.engine import ReSiPEEngine
from repro.core.mvm import MVMMode
from repro.errors import ShapeError
from repro.reram.device import DeviceSpec


@pytest.fixture
def weights(rng):
    return rng.random((32, 16))


@pytest.fixture
def engine(weights, calibrated_params):
    return ReSiPEEngine.from_normalised_weights(weights, calibrated_params)


class TestLinearFidelity:
    def test_linear_mode_is_matmul(self, weights, calibrated_params, rng):
        engine = ReSiPEEngine.from_normalised_weights(
            weights, calibrated_params, mode=MVMMode.LINEAR
        )
        x = rng.random((4, 32))
        assert np.allclose(
            engine.mvm_values(x), x @ engine.normalised_weights, atol=1e-12
        )

    def test_normalised_weights_definition(self, engine):
        assert np.allclose(
            engine.normalised_weights,
            engine.array.conductances / engine.array.spec.g_max,
        )


class TestExactFidelity:
    def test_small_systematic_error(self, engine, rng):
        x = rng.random((8, 32))
        y = engine.mvm_values(x)
        ref = x @ engine.normalised_weights
        rel = np.abs(y - ref) / np.maximum(ref, 1e-9)
        assert rel.max() < 0.15  # calibrated regime keeps droop bounded

    def test_compensation_reduces_error(self, weights, calibrated_params, rng):
        plain = ReSiPEEngine.from_normalised_weights(weights, calibrated_params)
        comp = ReSiPEEngine.from_normalised_weights(
            weights, calibrated_params, compensate=True
        )
        x = rng.random((8, 32))
        ref = x @ plain.normalised_weights
        err_plain = np.abs(plain.mvm_values(x) - ref).mean()
        err_comp = np.abs(comp.mvm_values(x) - ref).mean()
        assert err_comp < err_plain

    def test_zero_input_zero_output(self, engine):
        y = engine.mvm_values(np.zeros(32))
        assert np.allclose(y, 0.0, atol=1e-12)

    def test_output_times_within_slice(self, engine, rng):
        t = engine.output_times(rng.random(32))
        assert np.all(t >= 0)
        assert np.all(t <= engine.params.slice_length)


class TestVariation:
    def test_perturbed_changes_outputs(self, engine, rng):
        x = rng.random(32)
        base = engine.mvm_values(x)
        noisy = engine.perturbed(rng, 0.2).mvm_values(x)
        assert not np.allclose(base, noisy)

    def test_perturbed_preserves_original(self, engine, rng):
        before = engine.array.conductances.copy()
        engine.perturbed(rng, 0.2)
        assert np.array_equal(engine.array.conductances, before)

    def test_zero_sigma_near_identity(self, engine, rng):
        x = rng.random(32)
        assert np.allclose(
            engine.mvm_values(x), engine.perturbed(rng, 0.0).mvm_values(x)
        )

    def test_error_grows_with_sigma(self, engine):
        x = np.random.default_rng(0).random((16, 32))
        ref = engine.mvm_values(x)
        errs = []
        for sigma in (0.05, 0.2):
            trial_errs = []
            for seed in range(5):
                noisy = engine.perturbed(np.random.default_rng(seed), sigma)
                trial_errs.append(np.abs(noisy.mvm_values(x) - ref).mean())
            errs.append(np.mean(trial_errs))
        assert errs[1] > errs[0]


class TestConstruction:
    def test_rejects_non_2d(self, calibrated_params):
        with pytest.raises(ShapeError):
            ReSiPEEngine.from_normalised_weights(np.zeros(4), calibrated_params)

    def test_custom_spec(self, weights, calibrated_params):
        engine = ReSiPEEngine.from_normalised_weights(
            weights, calibrated_params, spec=DeviceSpec.paper_full_range()
        )
        assert engine.array.spec.r_lrs == pytest.approx(10e3)

    def test_dynamic_range_ceiling(self, engine):
        assert engine.dynamic_range_ceiling() == pytest.approx(
            engine.params.slice_length / engine.output_scale
        )
