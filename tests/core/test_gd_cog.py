"""Global decoder (Eq. 1) and column output generator (Eqs. 3-4)."""

import math

import numpy as np
import pytest

from repro.circuits.comparator import ComparatorModel
from repro.core.cog import ColumnOutputGenerator
from repro.core.global_decoder import GlobalDecoder
from repro.errors import CircuitError, EncodingError


class TestGlobalDecoder:
    def test_eq1_exact(self, paper_params):
        gd = GlobalDecoder(paper_params)
        t = 40e-9
        expected = paper_params.v_s * (1 - math.exp(-t / paper_params.tau_gd))
        assert gd.voltages_from_times(t) == pytest.approx(expected)

    def test_eq1_linear(self, paper_params):
        gd = GlobalDecoder(paper_params, exact=False)
        t = 5e-9
        expected = paper_params.v_s * t / paper_params.tau_gd
        assert gd.voltages_from_times(t) == pytest.approx(expected)

    def test_no_spike_is_zero_volts(self, paper_params):
        gd = GlobalDecoder(paper_params)
        v = gd.voltages_from_times(np.array([np.nan, 10e-9]))
        assert v[0] == pytest.approx(0.0)
        assert v[1] > 0.0

    def test_monotone_in_time(self, calibrated_params):
        gd = GlobalDecoder(calibrated_params)
        t = np.linspace(1e-9, 80e-9, 50)
        v = gd.voltages_from_times(t)
        assert np.all(np.diff(v) > 0)

    def test_rejects_time_outside_slice(self, paper_params):
        gd = GlobalDecoder(paper_params)
        with pytest.raises(EncodingError):
            gd.voltages_from_times(150e-9)
        with pytest.raises(EncodingError):
            gd.voltages_from_times(-1e-9)

    def test_ramp_nonlinearity_grows(self, paper_params):
        gd = GlobalDecoder(paper_params)
        early = gd.ramp_nonlinearity(5e-9)
        late = gd.ramp_nonlinearity(50e-9)
        assert 0 < early < late

    def test_calibrated_point_nearly_linear(self, calibrated_params):
        gd = GlobalDecoder(calibrated_params)
        # At t_in_max the calibrated ramp deviates < 5 % from linear.
        assert gd.ramp_nonlinearity(calibrated_params.t_in_max) < 0.05


class TestCOG:
    def test_eq3_exact(self, paper_params):
        cog = ColumnOutputGenerator(paper_params)
        v_eq, r_eq = 0.5, 1e3
        depth = paper_params.dt / (r_eq * paper_params.c_cog)
        expected = v_eq * (1 - math.exp(-depth))
        assert cog.column_voltage(v_eq, r_eq) == pytest.approx(expected)

    def test_eq3_linear(self, calibrated_params):
        cog = ColumnOutputGenerator(calibrated_params, exact=False)
        v_eq, r_eq = 0.5, 1e4
        expected = v_eq * calibrated_params.dt / (r_eq * calibrated_params.c_cog)
        assert cog.column_voltage(v_eq, r_eq) == pytest.approx(expected)

    def test_eq4_inverts_ramp(self, paper_params):
        """t_out must satisfy V_out = V_s (1 - e^{-t/tau}) exactly."""
        cog = ColumnOutputGenerator(paper_params)
        result = cog.times_from_voltages(0.3)
        t = result.times[0]
        recovered = paper_params.v_s * (1 - math.exp(-t / paper_params.tau_gd))
        assert recovered == pytest.approx(0.3, rel=1e-9)

    def test_gd_cog_round_trip(self, paper_params):
        """Encoding a time and decoding the same voltage is the identity
        — the shared-ramp cancellation (paper Section III-D)."""
        gd = GlobalDecoder(paper_params)
        cog = ColumnOutputGenerator(paper_params)
        t_in = 37e-9
        v = float(gd.voltages_from_times(t_in))
        result = cog.times_from_voltages(v)
        assert result.times[0] == pytest.approx(t_in, rel=1e-9)

    def test_saturation_flagged(self, paper_params):
        cog = ColumnOutputGenerator(paper_params)
        # A voltage the ramp cannot reach within the slice.
        v_unreachable = paper_params.v_s * 0.9999999
        result = cog.times_from_voltages(v_unreachable)
        assert not result.fired[0]
        assert result.times[0] == pytest.approx(paper_params.slice_length)
        assert result.any_saturated

    def test_generate_composes(self, paper_params):
        cog = ColumnOutputGenerator(paper_params)
        v_out = cog.column_voltage(0.4, 1e4)
        direct = cog.times_from_voltages(v_out)
        composed = cog.generate(0.4, 1e4)
        assert composed.times[0] == pytest.approx(direct.times[0])

    def test_comparator_offset_shifts_timing(self, paper_params):
        ideal = ColumnOutputGenerator(paper_params)
        offset = ColumnOutputGenerator(
            paper_params, comparator=ComparatorModel(offset=0.05)
        )
        t_ideal = ideal.times_from_voltages(0.3).times[0]
        t_offset = offset.times_from_voltages(0.3).times[0]
        assert t_offset > t_ideal

    def test_charging_energy_positive(self, paper_params):
        cog = ColumnOutputGenerator(paper_params)
        assert cog.charging_energy(0.5) > 0

    def test_validation(self, paper_params):
        cog = ColumnOutputGenerator(paper_params)
        with pytest.raises(CircuitError):
            cog.column_voltage(0.5, 0.0)
        with pytest.raises(CircuitError):
            cog.times_from_voltages(-0.1)
