"""Circuit-level MAC vs closed-form model (the Fig. 2/3 circuit)."""

import numpy as np
import pytest

from repro.config import CircuitParameters
from repro.core.mac import SingleSpikeMAC
from repro.errors import CircuitError, EncodingError, ShapeError


class TestTransientVsClosedForm:
    def test_two_input_mac(self, paper_params):
        mac = SingleSpikeMAC(paper_params, [1 / 50e3, 1 / 200e3])
        waves = mac.run([40e-9, 70e-9])
        predicted = mac.predicted_t_out([40e-9, 70e-9])
        assert waves.t_out is not None
        assert waves.t_out == pytest.approx(predicted, abs=5e-12)

    def test_single_input(self, paper_params):
        mac = SingleSpikeMAC(paper_params, [1 / 100e3])
        waves = mac.run([25e-9])
        assert waves.t_out == pytest.approx(mac.predicted_t_out([25e-9]), abs=5e-12)

    def test_no_spike_input(self, paper_params):
        mac = SingleSpikeMAC(paper_params, [1 / 50e3, 1 / 50e3])
        waves = mac.run([None, 60e-9])
        predicted = mac.predicted_t_out([None, 60e-9])
        assert waves.t_out == pytest.approx(predicted, abs=5e-12)

    def test_all_silent_inputs_no_output(self, paper_params):
        mac = SingleSpikeMAC(paper_params, [1 / 50e3])
        waves = mac.run([None])
        # V_out = 0 => comparator crosses immediately at the S2 start.
        assert waves.t_out is not None
        assert waves.t_out == pytest.approx(0.0, abs=1e-10)

    def test_calibrated_point(self, calibrated_params):
        mac = SingleSpikeMAC(calibrated_params, [1e-5, 2e-5, 5e-6])
        stimulus = [10e-9, 40e-9, 75e-9]
        waves = mac.run(stimulus)
        assert waves.t_out == pytest.approx(
            mac.predicted_t_out(stimulus), abs=5e-12
        )


class TestWaveformContent:
    @pytest.fixture(scope="class")
    def waves(self):
        params = CircuitParameters.paper()
        mac = SingleSpikeMAC(params, [1 / 50e3, 1 / 200e3])
        return mac.run([40e-9, 70e-9]), params

    def test_ramp_resets_in_compute_stage(self, waves):
        w, p = waves
        t_reset = p.slice_length - p.dt / 2
        assert w.ramp(t_reset) < 0.05

    def test_ramp_repeats_in_s2(self, waves):
        w, p = waves
        v1 = w.ramp(30e-9)
        v2 = w.ramp(p.slice_length + 30e-9)
        assert v1 == pytest.approx(v2, rel=1e-2)

    def test_held_voltage_matches_eq1(self, waves):
        w, p = waves
        expected = p.ramp_voltage(40e-9)
        assert w.held_inputs[0](90e-9) == pytest.approx(expected, rel=1e-6)

    def test_column_capacitor_idle_until_compute(self, waves):
        w, p = waves
        assert w.column(p.slice_length - p.dt - 1e-9) == pytest.approx(0.0, abs=1e-9)
        assert w.column(p.slice_length + 1e-9) > 0.0

    def test_output_pulse_width(self, waves):
        w, p = waves
        edges = w.output_spike.pulse_edges()
        assert len(edges) == 1
        rise, fall = edges[0]
        assert fall - rise == pytest.approx(p.spike_width, rel=1e-3)


class TestValidation:
    def test_spike_count_mismatch(self, paper_params):
        mac = SingleSpikeMAC(paper_params, [1e-5, 2e-5])
        with pytest.raises(ShapeError):
            mac.run([10e-9])

    def test_spike_in_compute_stage_rejected(self, paper_params):
        mac = SingleSpikeMAC(paper_params, [1e-5])
        with pytest.raises(EncodingError):
            mac.run([99.5e-9])

    def test_nonpositive_conductance(self, paper_params):
        with pytest.raises(CircuitError):
            SingleSpikeMAC(paper_params, [0.0])

    def test_empty_conductances(self, paper_params):
        with pytest.raises(ShapeError):
            SingleSpikeMAC(paper_params, [])
