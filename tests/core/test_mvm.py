"""Single-spike MVM operator (Eqs. 5-6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.mvm import MVMMode, SingleSpikeMVM
from repro.core.nonlinearity import exact_mac_output
from repro.errors import ShapeError
from repro.reram.crossbar import CrossbarArray
from repro.reram.device import DeviceSpec


@pytest.fixture
def array(rng):
    xb = CrossbarArray(16, 8)
    xb.program_normalised(rng.random((16, 8)))
    return xb


class TestLinearMode:
    def test_eq6(self, array, calibrated_params, rng):
        mvm = SingleSpikeMVM(array, calibrated_params, mode=MVMMode.LINEAR)
        times = rng.uniform(10e-9, 80e-9, 16)
        expected = calibrated_params.mac_gain * (times @ array.conductances)
        assert np.allclose(mvm.output_times(times), expected)

    def test_nan_contributes_zero(self, array, calibrated_params):
        mvm = SingleSpikeMVM(array, calibrated_params, mode=MVMMode.LINEAR)
        times = np.full(16, np.nan)
        times[0] = 50e-9
        expected = calibrated_params.mac_gain * 50e-9 * array.conductances[0]
        assert np.allclose(mvm.output_times(times), expected)

    def test_batch(self, array, calibrated_params, rng):
        mvm = SingleSpikeMVM(array, calibrated_params, mode=MVMMode.LINEAR)
        times = rng.uniform(10e-9, 80e-9, (4, 16))
        out = mvm.output_times(times)
        assert out.shape == (4, 8)

    def test_clamps_to_slice(self, calibrated_params, rng):
        # A huge gain configuration saturates the slice.
        xb = CrossbarArray(32, 2, spec=DeviceSpec.paper_full_range())
        xb.program_normalised(np.ones((32, 2)))
        import dataclasses
        params = dataclasses.replace(calibrated_params, c_cog=1e-14)
        mvm = SingleSpikeMVM(xb, params, mode=MVMMode.LINEAR)
        result = mvm.evaluate(np.full(32, 80e-9))
        assert not result.fired.all()
        assert np.all(result.times <= params.slice_length)


class TestExactMode:
    def test_matches_scalar_oracle(self, array, calibrated_params, rng):
        mvm = SingleSpikeMVM(array, calibrated_params, mode=MVMMode.EXACT)
        times = rng.uniform(10e-9, 80e-9, 16)
        out = mvm.output_times(times)
        for j in range(8):
            oracle = exact_mac_output(
                times, array.conductances[:, j], calibrated_params
            )
            assert out[j] == pytest.approx(oracle, rel=1e-12)

    def test_exact_below_linear(self, array, calibrated_params, rng):
        """Saturation always pulls the exact output below Eq. 6."""
        times = rng.uniform(10e-9, 80e-9, 16)
        exact = SingleSpikeMVM(array, calibrated_params, MVMMode.EXACT)
        linear = SingleSpikeMVM(array, calibrated_params, MVMMode.LINEAR)
        assert np.all(exact.output_times(times) <= linear.output_times(times) + 1e-15)

    @given(
        times=hnp.arrays(
            np.float64, (16,), elements=st.floats(10e-9, 80e-9)
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_monotonicity_property(self, times):
        """Increasing any input time never decreases any output time."""
        from repro.config import CircuitParameters

        params = CircuitParameters.calibrated()
        xb = CrossbarArray(16, 4)
        xb.program_normalised(np.linspace(0, 1, 64).reshape(16, 4))
        mvm = SingleSpikeMVM(xb, params, MVMMode.EXACT)
        base = mvm.output_times(times)
        bumped = times.copy()
        bumped[3] = min(80e-9, bumped[3] + 5e-9)
        after = mvm.output_times(bumped)
        assert np.all(after >= base - 1e-18)


class TestInterface:
    def test_shape_checked(self, array, calibrated_params):
        mvm = SingleSpikeMVM(array, calibrated_params)
        with pytest.raises(ShapeError):
            mvm.output_times(np.zeros(5))

    def test_saturation_mask(self, calibrated_params):
        xb = CrossbarArray(32, 2, spec=DeviceSpec.paper_full_range())
        targets = np.full((32, 2), xb.spec.g_min)
        targets[:, 1] = xb.spec.g_max
        xb.program(targets)
        mvm = SingleSpikeMVM(xb, calibrated_params)
        mask = mvm.saturation_mask()
        assert list(mask) == [False, True]

    def test_linear_full_scale_time(self, array, calibrated_params):
        mvm = SingleSpikeMVM(array, calibrated_params)
        expected = (
            calibrated_params.mac_gain
            * 80e-9
            * array.column_total_conductance().max()
        )
        assert mvm.linear_full_scale_time(80e-9) == pytest.approx(expected)
