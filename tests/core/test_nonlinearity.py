"""Non-linearity analysis (paper Section III-D)."""

import numpy as np
import pytest

from repro.core.nonlinearity import (
    analyse_nonlinearity,
    compensate_column_saturation,
    exact_mac_output,
    linear_mac_output,
    transfer_error,
)
from repro.errors import CircuitError, ShapeError


class TestTransfers:
    def test_linear_is_eq6(self, calibrated_params, rng):
        g = rng.uniform(1e-6, 2e-5, 16)
        t = rng.uniform(10e-9, 80e-9, 16)
        expected = calibrated_params.mac_gain * float(t @ g)
        assert linear_mac_output(t, g, calibrated_params) == pytest.approx(expected)

    def test_exact_below_linear(self, calibrated_params, rng):
        g = rng.uniform(1e-6, 2e-5, 16)
        t = rng.uniform(10e-9, 80e-9, 16)
        assert exact_mac_output(t, g, calibrated_params) <= linear_mac_output(
            t, g, calibrated_params
        )

    def test_batch_shapes(self, calibrated_params, rng):
        g = rng.uniform(1e-6, 2e-5, 8)
        t = rng.uniform(10e-9, 80e-9, (5, 8))
        assert np.asarray(exact_mac_output(t, g, calibrated_params)).shape == (5,)

    def test_nan_means_silent(self, calibrated_params):
        g = np.array([1e-5, 1e-5])
        with_nan = exact_mac_output(
            np.array([np.nan, 40e-9]), g, calibrated_params
        )
        # A nan input contributes nothing; equivalent to a silent row
        # of the same column (conductance still loads the column).
        explicit = exact_mac_output(np.array([0.0, 40e-9]), g, calibrated_params)
        assert with_nan == pytest.approx(explicit)

    def test_shape_validation(self, calibrated_params):
        with pytest.raises(ShapeError):
            linear_mac_output(np.zeros(3), np.zeros((2, 2)), calibrated_params)
        with pytest.raises(CircuitError):
            exact_mac_output(np.zeros(2), np.zeros(2), calibrated_params)


class TestTransferError:
    def test_grows_with_conductance(self, calibrated_params):
        t = np.full(32, 50e-9)
        small = transfer_error(t, np.full(32, 0.32e-3 / 32), calibrated_params)
        large = transfer_error(t, np.full(32, 3.2e-3 / 32), calibrated_params)
        assert 0 < small < large

    def test_linear_regime_bounded(self, calibrated_params):
        """Inside the paper's bound the droop stays modest."""
        t = np.full(32, 80e-9)
        g = np.full(32, 1.6e-3 / 32)
        assert transfer_error(t, g, calibrated_params) < 0.30


class TestCompensation:
    def test_inverts_saturation(self, calibrated_params):
        g = np.full(32, 2.5e-3 / 32)  # beyond the linear bound
        t = np.full(32, 60e-9)
        raw = exact_mac_output(t, g, calibrated_params)
        linear = linear_mac_output(t, g, calibrated_params)
        fixed = compensate_column_saturation(raw, float(g.sum()), calibrated_params)
        assert abs(fixed - linear) < abs(raw - linear)

    def test_exact_inverse_without_ramp_curvature(self, calibrated_params):
        """With a single linear-regime input the compensation recovers
        the linear result to the residual ramp-curvature error only."""
        g = np.array([2e-5])
        t = np.array([20e-9])
        raw = exact_mac_output(t, g, calibrated_params)
        fixed = compensate_column_saturation(raw, 2e-5, calibrated_params)
        linear = linear_mac_output(t, g, calibrated_params)
        assert fixed == pytest.approx(linear, rel=0.02)

    def test_rejects_bad_conductance(self, calibrated_params):
        with pytest.raises(CircuitError):
            compensate_column_saturation(10e-9, 0.0, calibrated_params)


class TestAnalyse:
    def test_linear_flag(self, calibrated_params):
        low = analyse_nonlinearity(calibrated_params, 0.32e-3)
        high = analyse_nonlinearity(calibrated_params, 3.2e-3)
        assert low.linear
        assert not high.linear
        assert high.max_relative_error > low.max_relative_error

    def test_depth_matches_params(self, calibrated_params):
        report = analyse_nonlinearity(calibrated_params, 1.6e-3)
        assert report.saturation_depth == pytest.approx(
            calibrated_params.saturation_depth(1.6e-3)
        )

    def test_validation(self, calibrated_params):
        with pytest.raises(CircuitError):
            analyse_nonlinearity(calibrated_params, 0.0)
        with pytest.raises(CircuitError):
            analyse_nonlinearity(calibrated_params, 1e-3, cells=0)
