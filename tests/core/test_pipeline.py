"""Two-slice pipeline scheduler."""

import pytest

from repro.core.pipeline import schedule_pipeline
from repro.errors import ConfigurationError

SLICE = 100e-9


class TestPipelined:
    def test_latency_is_l_plus_1_slices(self):
        sched = schedule_pipeline(4, 1, SLICE)
        assert sched.sample_latency_slices == 5
        assert sched.sample_latency == pytest.approx(5 * SLICE)

    def test_initiation_interval_two_slices(self):
        sched = schedule_pipeline(4, 8, SLICE)
        assert sched.initiation_interval_slices == 2

    def test_throughput(self):
        sched = schedule_pipeline(3, 10, SLICE)
        assert sched.throughput == pytest.approx(1.0 / (2 * SLICE))

    def test_s2_equals_next_s1_slot(self):
        sched = schedule_pipeline(3, 1, SLICE)
        by_stage = {(t.layer, t.stage): t.slot for t in sched.tasks}
        for layer in range(2):
            assert by_stage[(layer, "S2")] == by_stage[(layer + 1, "S1")]

    def test_makespan(self):
        sched = schedule_pipeline(2, 5, SLICE)
        # Last sample launches at slot 8, finishes S2 of layer 1 at slot 10.
        assert sched.total_slices == 11


class TestNonPipelined:
    def test_latency_is_2l_slices(self):
        sched = schedule_pipeline(4, 1, SLICE, pipelined=False)
        assert sched.sample_latency_slices == 8

    def test_initiation_interval_2l(self):
        sched = schedule_pipeline(4, 3, SLICE, pipelined=False)
        assert sched.initiation_interval_slices == 8

    def test_pipelining_speedup(self):
        """The paper's conclusion: pipelining cuts steady-state cost from
        2L slices/sample to 2."""
        layers, samples = 5, 20
        pipe = schedule_pipeline(layers, samples, SLICE)
        serial = schedule_pipeline(layers, samples, SLICE, pipelined=False)
        assert serial.makespan / pipe.makespan > layers * 0.8


class TestInvariants:
    @pytest.mark.parametrize("layers,samples", [(1, 1), (3, 7), (6, 2)])
    def test_no_engine_double_booking(self, layers, samples):
        sched = schedule_pipeline(layers, samples, SLICE)
        seen = {}
        for t in sched.tasks:
            key = (t.layer, t.slot)
            assert key not in seen or seen[key] == (t.sample, t.stage)
            seen[key] = (t.sample, t.stage)

    def test_every_sample_visits_every_layer(self):
        sched = schedule_pipeline(3, 4, SLICE)
        for sample in range(4):
            layers = {t.layer for t in sched.tasks if t.sample == sample}
            assert layers == {0, 1, 2}

    def test_occupancy_bounded(self):
        occ = schedule_pipeline(3, 10, SLICE).engine_occupancy()
        assert all(0 < v <= 1 for v in occ.values())

    def test_single_sample_occupancy(self):
        occ = schedule_pipeline(2, 1, SLICE).engine_occupancy()
        assert occ[0] == pytest.approx(2 / 3)


class TestValidation:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ConfigurationError):
            schedule_pipeline(0, 1, SLICE)
        with pytest.raises(ConfigurationError):
            schedule_pipeline(1, 0, SLICE)

    def test_rejects_bad_slice(self):
        with pytest.raises(ConfigurationError):
            schedule_pipeline(1, 1, 0.0)
