"""ReSiPE power/latency/area model."""

import pytest

from repro.config import CircuitParameters
from repro.core.power import ReSiPEPowerModel
from repro.errors import ConfigurationError


@pytest.fixture
def model(paper_params):
    return ReSiPEPowerModel(paper_params)


class TestTiming:
    def test_latency_two_slices(self, model, paper_params):
        assert model.latency == pytest.approx(paper_params.mvm_latency)

    def test_ops_per_mvm(self, model):
        assert model.ops_per_mvm() == 2 * 32 * 32

    def test_throughput(self, model):
        assert model.throughput() == pytest.approx(2048 / 200e-9)


class TestEnergyPhysics:
    def test_crossbar_energy_tiny_at_calibrated_point(self):
        """The short computation stage + small held voltages make the
        crossbar contribution negligible — the core energy claim."""
        model = ReSiPEPowerModel(CircuitParameters.calibrated())
        crossbar = model.crossbar_energy_per_mvm() / model.latency
        assert crossbar / model.power() < 0.01

    def test_full_scale_voltage_follows_ramp(self, paper_params):
        model = ReSiPEPowerModel(paper_params)
        assert model.full_scale_input_voltage() == pytest.approx(
            paper_params.ramp_voltage(paper_params.t_in_max)
        )

    def test_ramp_energy(self, model, paper_params):
        expected = 2 * paper_params.c_gd * paper_params.v_s**2
        assert model.ramp_energy_per_mvm() == pytest.approx(expected)

    def test_cog_bank_scales_with_cols(self, paper_params):
        import dataclasses

        wide = ReSiPEPowerModel(dataclasses.replace(paper_params, cols=64))
        narrow = ReSiPEPowerModel(paper_params)
        assert wide.cog_capacitor_energy_per_mvm() == pytest.approx(
            2 * narrow.cog_capacitor_energy_per_mvm()
        )


class TestBudget:
    def test_groups_present(self, model):
        report = model.budget()
        assert set(report.group_power) == {"GD", "crossbar", "COG cluster", "control"}

    def test_cog_dominates(self, model):
        """The paper attributes most power to the COG cluster."""
        assert model.cog_power_share() > 0.8

    def test_cog_share_highest_at_calibrated_point(self):
        """At the calibrated point (3.2 pF bank) the COG share reaches
        the paper's 98.1 % figure."""
        model = ReSiPEPowerModel(CircuitParameters.calibrated())
        assert model.cog_power_share() > 0.97

    def test_power_positive_and_small(self, model):
        assert 0 < model.power() < 1e-3  # sub-mW engine

    def test_area_dominated_by_periphery_not_cells(self, model):
        report = model.budget()
        assert report.group_area["crossbar"] < 0.1 * report.total_area

    def test_power_efficiency(self, model):
        assert model.power_efficiency() == pytest.approx(
            model.throughput() / model.power()
        )


class TestValidation:
    def test_rejects_bad_conductance(self, paper_params):
        with pytest.raises(ConfigurationError):
            ReSiPEPowerModel(paper_params, mean_cell_conductance=0.0)

    def test_rejects_bad_input_ms(self, paper_params):
        with pytest.raises(ConfigurationError):
            ReSiPEPowerModel(paper_params, input_mean_square=2.0)
