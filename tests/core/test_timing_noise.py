"""Timing-noise analysis of the single-spiking readout."""

import numpy as np
import pytest

from repro.config import CircuitParameters
from repro.core.timing_noise import (
    TimingNoiseReport,
    analyse_timing_noise,
    effective_bits,
    monte_carlo_timing_noise,
    ramp_slope,
    timing_noise_from_voltage_noise,
    total_timing_noise,
)
from repro.errors import CircuitError


class TestRampSlope:
    def test_initial_slope(self, calibrated_params):
        p = calibrated_params
        assert ramp_slope(0.0, p) == pytest.approx(p.v_s / p.tau_gd)

    def test_slope_decays(self, calibrated_params):
        assert ramp_slope(50e-9, calibrated_params) < ramp_slope(
            5e-9, calibrated_params
        )

    def test_rejects_negative_time(self, calibrated_params):
        with pytest.raises(CircuitError):
            ramp_slope(-1e-9, calibrated_params)


class TestPropagation:
    def test_noise_grows_with_time(self, calibrated_params):
        """The exponential ramp makes late crossings noisier — the
        characteristic signature of timing-domain readout."""
        early = timing_noise_from_voltage_noise(1e-3, 10e-9, calibrated_params)
        late = timing_noise_from_voltage_noise(1e-3, 80e-9, calibrated_params)
        assert late > early

    def test_linear_in_voltage_noise(self, calibrated_params):
        a = timing_noise_from_voltage_noise(1e-3, 40e-9, calibrated_params)
        b = timing_noise_from_voltage_noise(2e-3, 40e-9, calibrated_params)
        assert b == pytest.approx(2 * a)

    def test_total_is_rss(self, calibrated_params):
        v_only = total_timing_noise(40e-9, calibrated_params,
                                    sigma_v=1e-3, sigma_delay=0, sigma_clock=0)
        combined = total_timing_noise(40e-9, calibrated_params,
                                      sigma_v=1e-3, sigma_delay=v_only,
                                      sigma_clock=0)
        assert combined == pytest.approx(v_only * np.sqrt(2))

    def test_validation(self, calibrated_params):
        with pytest.raises(CircuitError):
            timing_noise_from_voltage_noise(-1e-3, 10e-9, calibrated_params)
        with pytest.raises(CircuitError):
            total_timing_noise(10e-9, calibrated_params, sigma_delay=-1)


class TestEffectiveBits:
    def test_reasonable_resolution(self, calibrated_params):
        """At representative 65 nm noise figures a ReSiPE column is worth
        mid-single-digit to ~8 bits — competitive with the 8-bit ADCs of
        level-based designs (Table I positioning)."""
        bits = effective_bits(calibrated_params)
        assert 4.0 < bits < 12.0

    def test_more_noise_fewer_bits(self, calibrated_params):
        quiet = effective_bits(calibrated_params, sigma_v=0.2e-3)
        noisy = effective_bits(calibrated_params, sigma_v=5e-3)
        assert quiet > noisy

    def test_zero_for_hopeless_noise(self, calibrated_params):
        assert effective_bits(calibrated_params, sigma_v=10.0) == pytest.approx(0.0)

    def test_validation(self, calibrated_params):
        with pytest.raises(CircuitError):
            effective_bits(calibrated_params, t_full_scale=0.0)


class TestReport:
    def test_report_fields(self, calibrated_params):
        report = analyse_timing_noise(calibrated_params)
        assert isinstance(report, TimingNoiseReport)
        assert report.sigma_t_late > report.sigma_t_early > 0
        assert 0 < report.worst_value_noise < 1
        assert report.effective_bits > 0


class TestMonteCarloAgreement:
    def test_matches_closed_form(self, calibrated_params):
        """Randomised comparator offsets through the exact COG reproduce
        the analytic sigma_v/slope propagation within MC error."""
        p = calibrated_params
        sigma_v = 1e-3
        v_out = 0.05  # mid-range held voltage
        t_out = -p.tau_gd * np.log(1 - v_out / p.v_s)
        predicted = timing_noise_from_voltage_noise(sigma_v, t_out, p)
        measured = monte_carlo_timing_noise(
            p, v_out, sigma_v, trials=400, rng=np.random.default_rng(0)
        )
        assert measured == pytest.approx(predicted, rel=0.15)

    def test_validation(self, calibrated_params):
        with pytest.raises(CircuitError):
            monte_carlo_timing_noise(calibrated_params, 0.1, 1e-3, 1,
                                     np.random.default_rng(0))
        with pytest.raises(CircuitError):
            monte_carlo_timing_noise(calibrated_params, 2.0, 1e-3, 10,
                                     np.random.default_rng(0))
