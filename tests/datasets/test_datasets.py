"""Synthetic datasets and loaders."""

import numpy as np
import pytest

from repro.datasets import (
    Dataset,
    SyntheticCIFAR,
    SyntheticMNIST,
    batches,
    make_cifar_like,
    make_mnist_like,
    one_hot,
    train_test_split,
)
from repro.errors import ConfigurationError, ShapeError


class TestSyntheticMNIST:
    def test_shapes_and_range(self):
        data = make_mnist_like(100)
        assert data.images.shape == (100, 28, 28)
        assert data.images.min() >= 0.0
        assert data.images.max() <= 1.0
        assert data.num_classes == 10

    def test_deterministic(self):
        a = make_mnist_like(50, seed=7)
        b = make_mnist_like(50, seed=7)
        assert np.array_equal(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_seed_changes_data(self):
        a = make_mnist_like(50, seed=1)
        b = make_mnist_like(50, seed=2)
        assert not np.array_equal(a.images, b.images)

    def test_balanced_classes(self):
        data = make_mnist_like(200)
        counts = np.bincount(data.labels, minlength=10)
        assert counts.min() == counts.max() == 20

    def test_classes_are_distinguishable(self):
        """Mean images of distinct classes differ markedly — the dataset
        carries class structure, not just noise."""
        data = make_mnist_like(400, seed=0)
        means = [data.images[data.labels == c].mean(axis=0) for c in range(10)]
        gaps = [
            np.abs(means[a] - means[b]).mean()
            for a in range(10)
            for b in range(a + 1, 10)
        ]
        assert min(gaps) > 0.01

    def test_jitter_adds_variance(self):
        clean = SyntheticMNIST(jitter=0.0, noise=0.0, seed=0).generate(40)
        noisy = SyntheticMNIST(jitter=1.0, noise=0.1, seed=0).generate(40)
        var_clean = np.mean([
            clean.images[clean.labels == c].var(axis=0).mean() for c in range(10)
        ])
        var_noisy = np.mean([
            noisy.images[noisy.labels == c].var(axis=0).mean() for c in range(10)
        ])
        assert var_noisy > var_clean

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SyntheticMNIST(size=4)
        with pytest.raises(ConfigurationError):
            SyntheticMNIST().generate(5)
        with pytest.raises(ConfigurationError):
            SyntheticMNIST().sample(10, np.random.default_rng(0))


class TestSyntheticCIFAR:
    def test_shapes_and_range(self):
        data = make_cifar_like(60)
        assert data.images.shape == (60, 3, 16, 16)
        assert 0.0 <= data.images.min() and data.images.max() <= 1.0

    def test_full_size_supported(self):
        data = SyntheticCIFAR(size=32).generate(20)
        assert data.images.shape == (20, 3, 32, 32)

    def test_deterministic(self):
        a = make_cifar_like(30, seed=3)
        b = make_cifar_like(30, seed=3)
        assert np.array_equal(a.images, b.images)

    def test_class_colour_separation(self):
        data = make_cifar_like(300, seed=0)
        means = np.stack([
            data.images[data.labels == c].mean(axis=(0, 2, 3)) for c in range(10)
        ])
        # Not all classes share a mean colour.
        assert means.std(axis=0).max() > 0.02

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SyntheticCIFAR(size=4)
        with pytest.raises(ConfigurationError):
            SyntheticCIFAR(num_classes=1)
        with pytest.raises(ConfigurationError):
            SyntheticCIFAR().sample(99, np.random.default_rng(0))


class TestLoaders:
    @pytest.fixture
    def data(self):
        return make_mnist_like(100)

    def test_split_sizes(self, data):
        train, test = train_test_split(data, test_fraction=0.25)
        assert len(train) == 75
        assert len(test) == 25

    def test_split_disjoint_cover(self, data):
        train, test = train_test_split(data)
        assert len(train) + len(test) == len(data)

    def test_split_validation(self, data):
        with pytest.raises(ShapeError):
            train_test_split(data, test_fraction=0.0)

    def test_batches_cover_everything(self, data):
        seen = 0
        for images, labels in batches(data, batch_size=32):
            assert images.shape[0] == labels.shape[0]
            seen += images.shape[0]
        assert seen == len(data)

    def test_flattened(self, data):
        flat = data.flattened()
        assert flat.images.shape == (100, 784)

    def test_one_hot(self):
        out = one_hot(np.array([0, 2]), 3)
        assert np.array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_validation(self):
        with pytest.raises(ShapeError):
            one_hot(np.array([3]), 3)

    def test_dataset_validation(self):
        with pytest.raises(ShapeError):
            Dataset(images=np.zeros((5, 4)), labels=np.zeros(3, int), num_classes=2)
        with pytest.raises(ShapeError):
            Dataset(images=np.zeros((3, 4)), labels=np.zeros(3, int), num_classes=1)


class TestDatasetPersistence:
    def test_save_load_round_trip(self, tmp_path):
        from repro.datasets import load_dataset, save_dataset

        data = make_mnist_like(20, seed=3)
        path = str(tmp_path / "mnist.npz")
        save_dataset(data, path)
        back = load_dataset(path)
        assert np.array_equal(back.images, data.images)
        assert np.array_equal(back.labels, data.labels)
        assert back.num_classes == data.num_classes
        assert back.name == data.name

    def test_load_corrupt_raises_artifact_error(self, tmp_path):
        from repro.datasets import load_dataset
        from repro.errors import ArtifactError

        path = str(tmp_path / "bad.npz")
        with open(path, "wb") as fh:
            fh.write(b"PK\x03\x04 not really a zip")
        with pytest.raises(ArtifactError):
            load_dataset(path)

    def test_load_missing_raises_artifact_error(self, tmp_path):
        from repro.datasets import load_dataset
        from repro.errors import ArtifactError

        with pytest.raises(ArtifactError):
            load_dataset(str(tmp_path / "absent.npz"))

    def test_load_wrong_fields_raises_artifact_error(self, tmp_path):
        from repro.datasets import load_dataset
        from repro.errors import ArtifactError

        path = str(tmp_path / "odd.npz")
        np.savez(path, something_else=np.zeros(3))
        with pytest.raises(ArtifactError):
            load_dataset(path)
