"""Energy framework: technology, components, budgets."""

import pytest

from repro.energy.components import (
    COMPONENT_LIBRARY,
    Component,
    capacitor_charge_energy,
    get_component,
)
from repro.energy.model import BudgetLine, DesignBudget
from repro.energy.technology import TechnologyParameters
from repro.errors import ConfigurationError


class TestTechnology:
    def test_paper_node(self):
        tech = TechnologyParameters.tsmc65()
        assert tech.node == pytest.approx(65e-9)
        assert tech.clock == pytest.approx(1e9)

    def test_crossbar_area(self):
        tech = TechnologyParameters.tsmc65()
        area = tech.crossbar_area(32, 32)
        assert area == pytest.approx(32 * 32 * 30 * (65e-9) ** 2)

    def test_mim_capacitor_area(self):
        tech = TechnologyParameters.tsmc65()
        # 2 fF/um² -> 100 fF needs 50 um².
        assert tech.mim_capacitor_area(100e-15) == pytest.approx(50e-12)

    def test_scaling_shrinks_everything(self):
        tech65 = TechnologyParameters.tsmc65()
        tech28 = tech65.scaled(28e-9)
        assert tech28.supply < tech65.supply
        assert tech28.clock > tech65.clock
        assert tech28.crossbar_area(32, 32) < tech65.crossbar_area(32, 32)
        assert tech28.mim_capacitor_area(100e-15) < tech65.mim_capacitor_area(100e-15)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TechnologyParameters(node=0.0)
        tech = TechnologyParameters.tsmc65()
        with pytest.raises(ConfigurationError):
            tech.crossbar_area(0, 4)
        with pytest.raises(ConfigurationError):
            tech.mim_capacitor_area(0.0)
        with pytest.raises(ConfigurationError):
            tech.scaled(-1.0)


class TestComponents:
    def test_library_nonempty_and_typed(self):
        assert len(COMPONENT_LIBRARY) >= 10
        for comp in COMPONENT_LIBRARY.values():
            assert comp.active_power >= comp.idle_power >= 0
            assert comp.area > 0
            assert comp.note

    def test_get_component(self):
        assert get_component("sar_adc_8b").name == "sar_adc_8b"

    def test_get_unknown_component(self):
        with pytest.raises(ConfigurationError):
            get_component("flux_capacitor")

    def test_average_power(self):
        comp = Component("x", active_power=10e-6, idle_power=1e-6, area=1e-12)
        assert comp.average_power(0.5) == pytest.approx(5.5e-6)
        assert comp.average_power(0.0) == pytest.approx(1e-6)
        assert comp.average_power(1.0) == pytest.approx(10e-6)

    def test_average_power_validates_duty(self):
        comp = get_component("sample_hold")
        with pytest.raises(ConfigurationError):
            comp.average_power(1.5)

    def test_energy(self):
        comp = Component("x", active_power=1e-6, idle_power=0.0, area=1e-12)
        assert comp.energy(1e-3) == pytest.approx(1e-9)
        with pytest.raises(ConfigurationError):
            comp.energy(-1.0)

    def test_capacitor_charge_energy(self):
        assert capacitor_charge_energy(100e-15, 1.0) == pytest.approx(1e-13)
        with pytest.raises(ConfigurationError):
            capacitor_charge_energy(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            capacitor_charge_energy(1e-15, -1.0)

    def test_adc_dominates_row_dac(self):
        """The sizing assumption behind the level-design area story."""
        adc = get_component("sar_adc_8b")
        dac = get_component("dac_6b_row")
        assert adc.area > 10 * dac.area


class TestBudget:
    def test_aggregation(self):
        b = DesignBudget("test")
        b.add_component("comps", "grp_a", get_component("comparator_ct"), count=4)
        b.add_raw("physics", "grp_b", power=1e-6, area=2e-12)
        report = b.report()
        expected_a = 4 * get_component("comparator_ct").average_power(1.0)
        assert report.group_power["grp_a"] == pytest.approx(expected_a)
        assert report.total_power == pytest.approx(expected_a + 1e-6)
        assert report.group_area["grp_b"] == pytest.approx(2e-12)

    def test_group_share(self):
        b = DesignBudget("test")
        b.add_raw("x", "a", power=3e-6)
        b.add_raw("y", "b", power=1e-6)
        report = b.report()
        assert report.group_power_share("a") == pytest.approx(0.75)

    def test_unknown_group(self):
        b = DesignBudget("test").add_raw("x", "a", power=1e-6)
        with pytest.raises(ConfigurationError):
            b.report().group_power_share("zzz")

    def test_empty_budget(self):
        with pytest.raises(ConfigurationError):
            DesignBudget("empty").report()

    def test_line_validation(self):
        with pytest.raises(ConfigurationError):
            BudgetLine(label="bad", group="g")
        with pytest.raises(ConfigurationError):
            BudgetLine(label="bad", group="g", raw_power=-1.0)
        with pytest.raises(ConfigurationError):
            BudgetLine(
                label="bad", group="g",
                component=get_component("sample_hold"), duty=2.0,
            )

    def test_render_contains_groups(self):
        b = DesignBudget("demo").add_raw("x", "stuff", power=1e-6, area=1e-12)
        text = b.report().render()
        assert "demo" in text
        assert "stuff" in text
