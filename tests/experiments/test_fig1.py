"""Fig. 1 signal-relation harness."""

import pytest

from repro.config import CircuitParameters
from repro.experiments.fig1_signal_relation import render_fig1, run_fig1


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig1()

    def test_chain_matches_closed_form(self, result):
        assert result.chain_error < 20e-12

    def test_handoff_inside_shared_slice(self, result):
        assert 0 < result.layer1_output < result.params.slice_length

    def test_timeline_ordered(self, result):
        times = [t for t, _ in result.absolute_times]
        assert times == sorted(times)
        assert times[-1] > 2 * result.params.slice_length

    def test_identical_format_across_layers(self, result):
        """Both layers' outputs are plain in-slice spike times — the
        'In/Out scale: same' row of Table I."""
        for t in (result.layer1_output, result.layer2_output):
            assert 0 <= t <= result.params.slice_length

    def test_render(self, result):
        text = render_fig1(result)
        assert "layer-1 output spike == layer-2 input spike" in text
        assert "worst chain error" in text

    def test_paper_point_also_chains(self):
        result = run_fig1(params=CircuitParameters.paper())
        assert result.chain_error < 20e-12

    def test_extreme_configuration_stays_in_slice(self):
        """Even a fully-saturating column (tiny C_cog, LRS cells, late
        spikes) cannot push the output past the slice: the shared ramp
        bounds V_out by construction (V_eq < V(ramp) at slice end), so
        the chain degrades gracefully instead of dropping spikes."""
        import dataclasses

        params = dataclasses.replace(
            CircuitParameters.calibrated(), c_cog=1e-15
        )
        result = run_fig1(
            params=params,
            layer1_spikes=(80e-9, 80e-9),
            layer1_resistances=(1e3, 1e3),
        )
        assert result.layer1_output <= params.slice_length
        assert result.layer2_output <= params.slice_length
        # Fully saturated = weighted-mean regime: equal inputs pass
        # through essentially unchanged (the cancellation identity).
        assert result.layer1_output == pytest.approx(80e-9, rel=1e-3)
