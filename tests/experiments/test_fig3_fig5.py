"""Fig. 3 and Fig. 5 experiment harnesses."""

import numpy as np
import pytest

from repro.config import CircuitParameters
from repro.experiments.fig3_waveform import render_fig3, run_fig3
from repro.experiments.fig5_characterization import render_fig5, run_fig5


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3()

    def test_transient_matches_closed_form(self, result):
        assert result.t_out_measured is not None
        assert result.timing_error < 10e-12  # sub-10 ps agreement

    def test_waveforms_present(self, result):
        assert result.waveforms.ramp.duration == pytest.approx(200e-9)
        assert 0 in result.waveforms.held_inputs
        assert 1 in result.waveforms.held_inputs

    def test_held_voltages_follow_eq1(self, result):
        p = result.params
        for t, v in zip(result.spike_times, result.held_voltages):
            assert v == pytest.approx(p.ramp_voltage(t), rel=1e-6)

    def test_v_out_below_supply(self, result):
        assert 0 < result.v_out < result.params.v_s

    def test_render(self, result):
        text = render_fig3(result)
        assert "Fig. 3" in text
        assert "output spike" in text

    def test_custom_stimulus(self):
        result = run_fig3(spike_times=(20e-9, 50e-9), resistances=(100e3, 100e3))
        assert result.t_out_measured is not None


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(seed=0)

    def test_sample_count(self, result):
        assert result.t_out.size == 100
        assert result.input_strength.size == 100

    def test_conductance_range(self, result):
        assert result.total_g.min() >= 0.32e-3
        assert result.total_g.max() <= 3.2e-3

    def test_curve1_near_ideal_slope(self, result):
        """In the linear regime Curve 1 tracks the Eq. 6 gain."""
        ideal = result.params.mac_gain
        assert 0.6 * ideal < result.curve1.slope < ideal

    def test_curve1_good_fit(self, result):
        assert result.curve1.r2 > 0.95

    def test_saturation_ordering(self, result):
        """Curves 2-3 (high ΣG) droop below Curve 1, Curve 3 the most —
        the paper's central Fig. 5 observation."""
        assert result.curve2.slope < result.curve1.slope
        assert result.curve3.slope < result.curve2.slope
        assert result.droop(result.curve3) > result.droop(result.curve2) > 0

    def test_high_g_points_below_curve1(self, result):
        """Light-blue points (ΣG > 1.6 mS) fall below the Curve 1 line."""
        mask = ~result.linear_mask
        predicted = result.curve1.predict(result.input_strength[mask])
        below = np.mean(result.t_out[mask] < predicted)
        assert below > 0.9

    def test_outputs_monotone_in_strength_within_regime(self, result):
        s = result.curve2_strength
        t = result.curve2_tout
        assert np.all(np.diff(t[np.argsort(s)]) > 0)

    def test_render(self, result):
        text = render_fig5(result)
        assert "Curve 1" in text
        assert "droop" in text

    def test_paper_literal_point_fully_saturated(self):
        """With the literal 100 fF C_cog the transfer collapses toward
        the weighted-mean regime: Curve 1 slope far below ideal."""
        result = run_fig5(params=CircuitParameters.paper(), seed=0)
        assert result.curve1.slope < 0.1 * result.params.mac_gain
