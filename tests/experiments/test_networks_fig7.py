"""Benchmark networks and the Fig. 7 accuracy study (reduced scale)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.fig7_accuracy import Fig7Config, render_fig7, run_fig7
from repro.experiments.networks import (
    NETWORK_SPECS,
    get_benchmark_networks,
)


class TestNetworkSpecs:
    def test_six_networks_paper_order(self):
        assert list(NETWORK_SPECS) == [
            "mlp-1", "mlp-2", "cnn-1", "cnn-2", "cnn-3", "cnn-4"
        ]

    def test_depth_ordering_preserved(self):
        """The Fig. 7 substitution requirement: weighted-layer depth
        strictly increases MLP-1 -> CNN-4 (DESIGN.md §2)."""
        from repro.nn.conv import Conv2D
        from repro.nn.layers import Dense

        depths = []
        for spec in NETWORK_SPECS.values():
            model = spec.build()
            depths.append(
                sum(isinstance(l, (Dense, Conv2D)) for l in model.layers)
            )
        assert depths == sorted(depths)
        assert depths[0] == 1  # MLP-1 is a single perceptron layer
        assert depths[2] == 4  # CNN-1 is the 4-layer LeNet

    def test_parameter_count_ordering(self):
        mlp1 = NETWORK_SPECS["mlp-1"].build().parameter_count()
        cnn4 = NETWORK_SPECS["cnn-4"].build().parameter_count()
        assert cnn4 > mlp1

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError):
            get_benchmark_networks(keys=["resnet-50"])


class TestTraining:
    @pytest.fixture(scope="class")
    def trained(self):
        return get_benchmark_networks(
            keys=["mlp-1", "mlp-2"], n_samples=600, cache=False
        )

    def test_learns(self, trained):
        for net in trained:
            assert net.software_accuracy > 0.8, net.spec.display

    def test_mlp2_beats_mlp1(self, trained):
        assert trained[1].software_accuracy >= trained[0].software_accuracy - 0.02

    def test_cache_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        first = get_benchmark_networks(keys=["mlp-1"], n_samples=300)[0]
        second = get_benchmark_networks(keys=["mlp-1"], n_samples=300)[0]
        assert second.software_accuracy == first.software_accuracy
        a = first.model.layers[0].weight.value
        b = second.model.layers[0].weight.value
        assert np.allclose(a, b)


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        config = Fig7Config(
            sigmas=(0.0, 0.2),
            trials=2,
            networks=("mlp-1", "mlp-2"),
            n_samples=600,
            eval_samples=100,
        )
        return run_fig7(config)

    def test_rows_match_networks(self, result):
        assert [r.display.split(" ")[0] for r in result.rows] == ["MLP-1", "MLP-2"]

    def test_sigma0_drop_small(self, result):
        """Paper: the non-linearity alone costs < 2.5 % accuracy."""
        for row in result.rows:
            assert row.drop(0.0) < 0.05

    def test_variation_degrades(self, result):
        for row in result.rows:
            assert row.by_sigma[0.2][0] <= row.by_sigma[0.0][0] + 0.02

    def test_row_lookup(self, result):
        assert result.row("MLP-1").display.startswith("MLP-1")
        with pytest.raises(ConfigurationError):
            result.row("VGG-99")

    def test_render(self, result):
        text = render_fig7(result)
        assert "Fig. 7" in text
        assert "MLP-2" in text

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            Fig7Config(sigmas=())
        with pytest.raises(ConfigurationError):
            Fig7Config(trials=0)
        with pytest.raises(ConfigurationError):
            Fig7Config(eval_samples=5)
