"""Technology-scaling study and the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigurationError
from repro.experiments.scaling import render_scaling, run_scaling


class TestScaling:
    @pytest.fixture(scope="class")
    def points(self):
        return run_scaling()

    def test_four_default_nodes(self, points):
        assert [round(p.node * 1e9) for p in points] == [65, 45, 28, 16]

    def test_energy_falls_with_node(self, points):
        energies = [p.energy_per_mvm for p in points]
        assert energies == sorted(energies, reverse=True)

    def test_superlinear_energy_reduction(self, points):
        """Smaller MIM caps + lower supply + shorter slices compound —
        the paper's closing-remark prediction."""
        node_ratio = points[0].node / points[-1].node
        energy_ratio = points[0].energy_per_mvm / points[-1].energy_per_mvm
        assert energy_ratio > node_ratio

    def test_cog_still_dominates_at_all_nodes(self, points):
        for p in points:
            assert p.cog_share > 0.9

    def test_supply_scales_down(self, points):
        supplies = [p.params.v_s for p in points]
        assert supplies == sorted(supplies, reverse=True)

    def test_render(self, points):
        text = render_scaling(points)
        assert "65 nm" in text
        assert "16 nm" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_scaling(nodes=())
        with pytest.raises(ConfigurationError):
            run_scaling(nodes=(-1.0,))


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["fig5", "--samples", "42"])
        assert args.command == "fig5"
        assert args.samples == 42

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "operating point" in out
        assert "component library" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "This work" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "ReSiPE" in out

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        assert "output spike" in capsys.readouterr().out

    def test_fig5_small(self, capsys):
        assert main(["fig5", "--samples", "20"]) == 0
        assert "Curve 1" in capsys.readouterr().out

    def test_fig6(self, capsys):
        assert main(["fig6", "--budgets", "0.05", "0.5"]) == 0
        assert "winner" in capsys.readouterr().out

    def test_fig7_tiny(self, capsys):
        code = main([
            "fig7", "--networks", "mlp-1", "--sigmas", "0", "0.2",
            "--trials", "1", "--samples", "300", "--eval-samples", "50",
        ])
        assert code == 0
        assert "MLP-1" in capsys.readouterr().out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        assert "signal relation" in capsys.readouterr().out

    def test_scaling(self, capsys):
        assert main(["scaling", "--nodes", "65", "28"]) == 0
        out = capsys.readouterr().out
        assert "65 nm" in out
        assert "28 nm" in out

    def test_deploy_with_simulation(self, capsys):
        code = main([
            "deploy", "--network", "mlp-1", "--samples", "300",
            "--simulate", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Deployment" in out
        assert "Pipeline simulation" in out


class TestCacheCLI:
    def test_list_empty(self, tmp_path, capsys):
        assert main(["cache", "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "artifact store" in out
        assert "store is empty" in out

    def test_verify_quarantines_corrupt_entry(self, tmp_path, capsys):
        bad = tmp_path / "model.npz"
        bad.write_bytes(b"definitely not a zip")
        assert main(["cache", "--root", str(tmp_path), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "quarantined 1 corrupt entry" in out
        assert (tmp_path / "model.npz.corrupt").exists()

    def test_clear(self, tmp_path, capsys):
        (tmp_path / "model.npz").write_bytes(b"junk")
        assert main(["cache", "--root", str(tmp_path), "--clear"]) == 0
        assert "cleared" in capsys.readouterr().out
        assert not (tmp_path / "model.npz").exists()

    def test_respects_repro_cache_env(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        assert main(["cache"]) == 0
        assert str(tmp_path) in capsys.readouterr().out

    def test_deploy_save_report(self, tmp_path, monkeypatch, capsys):
        import json

        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "models"))
        report_path = tmp_path / "report.json"
        code = main([
            "deploy", "--network", "mlp-1", "--samples", "300",
            "--save-report", str(report_path),
        ])
        assert code == 0
        with open(report_path) as fh:
            payload = json.load(fh)
        assert payload["network_name"] == "MLP-1"
        assert payload["total_tiles"] >= 1
