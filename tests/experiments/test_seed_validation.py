"""Negative master seeds are rejected at the config boundary.

``SeedSequence(seed + crc32(token))`` raises an opaque numpy
``ValueError`` deep inside a campaign when the sum goes negative — and
only for tokens whose crc32 is small enough, so the crash would be
intermittent.  The specs reject it up front instead.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.fig7_accuracy import Fig7Config
from repro.faults import CampaignSpec
from repro.serving import ServingConfig


@pytest.mark.parametrize("make", [
    lambda: Fig7Config(seed=-1),
    lambda: CampaignSpec(seed=-7),
    lambda: ServingConfig(seed=-3),
])
def test_negative_seed_rejected(make):
    with pytest.raises(ConfigurationError, match="seed must be >= 0"):
        make()


def test_zero_and_positive_seeds_accepted():
    assert Fig7Config(seed=0).seed == 0
    assert CampaignSpec(seed=123).seed == 123
    assert ServingConfig(seed=5).seed == 5
