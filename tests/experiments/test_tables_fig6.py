"""Table I, Table II and Fig. 6 harnesses."""

import pytest

from repro.experiments.fig6_throughput import render_fig6, run_fig6
from repro.experiments.table1_taxonomy import render_table1
from repro.experiments.table2_comparison import (
    PAPER_HEADLINES,
    render_table2,
    run_table2,
)
from repro.errors import ConfigurationError


class TestTable1:
    def test_contains_all_families(self):
        text = render_table1()
        for family in ("Level", "PWM", "Rate coding", "Temporal coding", "This work"):
            assert family in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2()

    def test_all_headlines_measured(self, result):
        assert set(result.ratios) == set(PAPER_HEADLINES)

    def test_exact_by_construction_headlines(self, result):
        assert result.ratios["latency_reduction_vs_rate"] == pytest.approx(0.5)
        assert result.ratios["latency_reduction_vs_pwm"] == pytest.approx(
            0.688, abs=0.002
        )

    @pytest.mark.parametrize(
        "key,tolerance",
        [
            ("pe_vs_level", 0.10),
            ("pe_vs_pwm", 0.10),
            ("power_reduction_vs_rate", 0.05),
            ("area_reduction_vs_level", 0.05),
            ("area_reduction_vs_rate", 0.10),
        ],
    )
    def test_headline_close_to_paper(self, result, key, tolerance):
        assert result.ratio_vs_paper(key) == pytest.approx(1.0, abs=tolerance)

    def test_pe_vs_rate_same_direction(self, result):
        """Documented deviation: equal-throughput accounting pins this
        ratio to the power ratio (~3.0 vs the paper's 2.41); the winner
        and magnitude class hold."""
        assert 2.0 < result.ratios["pe_vs_rate"] < 4.0

    def test_cog_dominates(self, result):
        assert result.cog_power_share > 0.8

    def test_resipe_wins_every_efficiency_ratio(self, result):
        for key in ("pe_vs_level", "pe_vs_rate", "pe_vs_pwm"):
            assert result.ratios[key] > 1.0

    def test_render(self, result):
        text = render_table2(result)
        assert "Table II" in text
        assert "measured/paper" in text

    def test_ratio_vs_paper_unknown_key(self, result):
        with pytest.raises(ConfigurationError):
            result.ratio_vs_paper("nope")


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6()

    def test_resipe_wins_at_scale(self, result):
        assert result.winner_at(-1) == "ReSiPE (this work)"

    def test_throughput_monotone_in_budget(self, result):
        for series in result.throughput.values():
            assert all(b >= a for a, b in zip(series, series[1:]))

    def test_engine_counts_fit_budget(self, result):
        for name, counts in result.engines.items():
            for budget, count in zip(result.budgets, counts):
                assert count * result.engine_area[name] <= budget

    def test_advantage_over_level(self, result):
        """The whole point of Fig. 6: higher aggregate throughput than
        the level-based design under the same area."""
        assert result.advantage_over("level-based [14,17]") > 1.0

    def test_render(self, result):
        text = render_fig6(result)
        assert "Fig. 6" in text
        assert "winner" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_fig6(budgets=[0.0])
