"""Resumable Monte-Carlo fault campaigns."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    CampaignSpec,
    FaultCampaign,
    render_campaign,
)
from repro.store import ArtifactStore


@pytest.fixture
def spec():
    return CampaignSpec(
        network="mlp-1",
        rates=(0.0, 0.05),
        sigmas=(0.0,),
        ages=(0.0,),
        trials=2,
        seed=0,
        n_samples=300,
        eval_samples=50,
        backend="ideal",
    )


class TestSpec:
    def test_grid_enumeration(self, spec):
        points = spec.points()
        assert len(points) == 4  # 2 rates x 1 sigma x 1 age x 2 trials
        assert points[0] == pytest.approx((0.0, 0.0, 0.0, 0))

    def test_injector_composition(self, spec):
        assert spec.injector_for(0.0, 0.0, 0.0) is None
        solo = spec.injector_for(0.05, 0.0, 0.0)
        assert solo.describe()["type"] == "stuck_at"
        combo = spec.injector_for(0.05, 0.1, 3600.0)
        kinds = [s["type"] for s in combo.describe()["stages"]]
        assert kinds == ["drift", "variation", "stuck_at"]

    def test_stuck_on_fraction_split(self, spec):
        desc = spec.injector_for(0.04, 0.0, 0.0).describe()
        assert desc["stuck_on_rate"] == pytest.approx(0.02)
        assert desc["stuck_off_rate"] == pytest.approx(0.02)

    def test_fingerprint_tracks_spec(self, spec):
        import dataclasses

        other = dataclasses.replace(spec, seed=1)
        assert spec.fingerprint() != other.fingerprint()
        assert spec.fingerprint() == CampaignSpec(**dataclasses.asdict(spec)).fingerprint()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(rates=())
        with pytest.raises(ConfigurationError):
            CampaignSpec(rates=(1.5,))
        with pytest.raises(ConfigurationError):
            CampaignSpec(trials=0)
        with pytest.raises(ConfigurationError):
            CampaignSpec(backend="quantum")
        with pytest.raises(ConfigurationError):
            CampaignSpec(mode="surreal")
        with pytest.raises(ConfigurationError):
            CampaignSpec(stuck_on_fraction=2.0)


class TestRun:
    def test_campaign_runs_resumes_and_recovers(self, spec, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "models"))
        store = ArtifactStore(str(tmp_path / "records"))

        # Interrupted run: only one new trial computed.
        partial = FaultCampaign(spec, store=store).run(max_trials=1)
        assert partial.computed == 1 and partial.cached == 0
        assert len(partial.records) == 1

        # Resume finishes the remaining trials without recomputation.
        full = FaultCampaign(spec, store=store).run()
        assert full.computed == 3 and full.cached == 1
        assert len(full.records) == 4

        # A third run is served entirely from the store.
        again = FaultCampaign(spec, store=store).run()
        assert again.computed == 0 and again.cached == 4
        assert again.records == full.records

        # Remap-protected accuracy never trails the unprotected chip at
        # the faulted grid point.
        curve = {p["rate"]: p for p in again.curve()}
        faulty = curve[0.05]
        assert faulty["remapped_mean"] >= faulty["unprotected_mean"]
        assert faulty["mean_flagged"] > 0

        # Pristine point: remap is a no-op.
        clean = curve[0.0]
        assert clean["remapped_mean"] == pytest.approx(
            clean["unprotected_mean"]
        )

        text = render_campaign(again)
        assert "remapped" in text and "mlp-1" in text
        assert "4 trial(s) from store" in text


class TestCampaignTrace:
    def test_campaign_spans_share_one_trace(self, spec, tmp_path,
                                            monkeypatch):
        """campaign.run mints one trace id; scheduler cells and trial
        groups stitch under it."""
        from repro.telemetry import session as telemetry

        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "models"))
        store = ArtifactStore(str(tmp_path / "records"))
        with telemetry.capture() as session:
            FaultCampaign(spec, store=store).run()
        by_name = {}
        for span in session.tracer.spans:
            by_name.setdefault(span.name, []).append(span)
        (run_span,) = by_name["campaign.run"]
        assert run_span.trace_id is not None
        for name in ("scheduler.cell", "campaign.trial_group"):
            assert by_name[name], f"no {name} spans recorded"
            assert all(s.trace_id == run_span.trace_id
                       for s in by_name[name])
        # The 4-point grid at trial_batch=1: one group span per trial,
        # plus the parent-side prepare cell.
        assert len(by_name["campaign.trial_group"]) == 4
        assert len(by_name["scheduler.cell"]) == 5


class TestCLI:
    def test_faults_subcommand_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["faults", "--rates", "0", "0.01", "--trials", "2",
             "--seed", "7", "--backend", "ideal", "--no-remap"]
        )
        assert args.command == "faults"
        assert args.rates == pytest.approx([0.0, 0.01])
        assert args.seed == 7
        assert args.no_remap

    def test_fig7_gains_seed_and_fault_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["fig7", "--seed", "3", "--stuck-on", "0.01",
             "--stuck-off", "0.02"]
        )
        assert args.seed == 3
        assert args.stuck_on == pytest.approx(0.01)
        assert args.stuck_off == pytest.approx(0.02)
