"""Unified fault-injector protocol."""

import json

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.faults import (
    CompositeInjector,
    DriftInjector,
    StuckAtInjector,
    VariationInjector,
    WearInjector,
)
from repro.reram.device import DeviceSpec


@pytest.fixture
def spec():
    return DeviceSpec.paper_linear_range()


@pytest.fixture
def weights(rng):
    return rng.random((16, 12))


class TestStuckAt:
    def test_unit_window_pins_to_zero_and_one(self, weights, rng):
        all_on = StuckAtInjector(stuck_on_rate=1.0).apply(weights, rng)
        assert np.allclose(all_on, 1.0)
        all_off = StuckAtInjector(stuck_off_rate=1.0).apply(weights, rng)
        assert np.allclose(all_off, 0.0, atol=1e-9)

    def test_device_window_pins_to_extremes(self, weights, rng, spec):
        g = spec.g_min + weights * (spec.g_max - spec.g_min)
        hit = StuckAtInjector(stuck_on_rate=1.0).apply(g, rng, spec=spec)
        assert np.allclose(hit, spec.g_max)

    def test_input_never_modified(self, weights, rng):
        before = weights.copy()
        StuckAtInjector(stuck_on_rate=0.5).apply(weights, rng)
        assert np.array_equal(weights, before)

    def test_is_null(self):
        assert StuckAtInjector().is_null
        assert not StuckAtInjector(stuck_on_rate=0.01).is_null

    def test_seeded_reproducibility(self, weights):
        injector = StuckAtInjector(stuck_on_rate=0.2, stuck_off_rate=0.1)
        a = injector.apply(weights, np.random.default_rng(7))
        b = injector.apply(weights, np.random.default_rng(7))
        c = injector.apply(weights, np.random.default_rng(8))
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_validation(self):
        with pytest.raises(DeviceError):
            StuckAtInjector(stuck_on_rate=-0.1)
        with pytest.raises(DeviceError):
            StuckAtInjector(stuck_on_rate=0.7, stuck_off_rate=0.7)


class TestVariation:
    def test_perturbs_values(self, weights, rng):
        out = VariationInjector(sigma=0.2).apply(weights, rng)
        assert not np.allclose(out, weights)

    def test_sigma_zero_is_null_identity(self, weights, rng):
        injector = VariationInjector(sigma=0.0)
        assert injector.is_null
        assert np.allclose(injector.apply(weights, rng), weights)

    def test_validation(self):
        with pytest.raises(DeviceError):
            VariationInjector(sigma=-0.1)


class TestDrift:
    def test_zero_elapsed_is_identity(self, weights, rng):
        injector = DriftInjector(elapsed=0.0)
        assert injector.is_null
        assert np.allclose(injector.apply(weights, rng), weights)

    def test_drift_only_decays(self, weights, rng):
        out = DriftInjector(elapsed=1e6).apply(weights, rng)
        assert np.all(out <= weights + 1e-12)
        assert np.all(out >= 0)

    def test_device_window_clip(self, weights, rng, spec):
        g = spec.g_min + weights * (spec.g_max - spec.g_min)
        out = DriftInjector(elapsed=1e9, nu=0.2).apply(g, rng, spec=spec)
        assert np.all(out >= spec.g_min - 1e-18)

    def test_validation(self):
        with pytest.raises(DeviceError):
            DriftInjector(elapsed=-1.0)


class TestWear:
    def test_zero_cycles_is_identity(self, weights, rng):
        injector = WearInjector(cycles=0)
        assert injector.is_null
        assert np.allclose(injector.apply(weights, rng), weights)

    def test_window_closure_clips_extremes(self, rng):
        g = np.array([0.0, 0.5, 1.0])
        out = WearInjector(cycles=9e6).apply(g, rng)
        assert out[0] > 0.0 and out[2] < 1.0
        assert out[1] == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(DeviceError):
            WearInjector(cycles=-1)


class TestComposite:
    def test_stages_apply_in_order(self, weights, rng):
        # Stuck-on-everything last wins regardless of earlier stages.
        injector = CompositeInjector(
            VariationInjector(sigma=0.3), StuckAtInjector(stuck_on_rate=1.0)
        )
        assert np.allclose(injector.apply(weights, rng), 1.0)

    def test_nested_composites_flatten(self):
        inner = CompositeInjector(VariationInjector(sigma=0.1))
        outer = CompositeInjector(inner, StuckAtInjector(stuck_on_rate=0.01))
        assert len(outer.stages) == 2

    def test_is_null_when_all_stages_null(self):
        assert CompositeInjector(
            VariationInjector(sigma=0.0), DriftInjector(elapsed=0.0)
        ).is_null
        assert not CompositeInjector(
            VariationInjector(sigma=0.0), StuckAtInjector(stuck_on_rate=0.1)
        ).is_null

    def test_rejects_non_injector(self):
        with pytest.raises(DeviceError):
            CompositeInjector(VariationInjector(sigma=0.1), object())

    def test_seeded_reproducibility(self, weights):
        injector = CompositeInjector(
            DriftInjector(elapsed=1e4),
            VariationInjector(sigma=0.1),
            StuckAtInjector(stuck_on_rate=0.05),
        )
        a = injector.apply(weights, np.random.default_rng(3))
        b = injector.apply(weights, np.random.default_rng(3))
        assert np.array_equal(a, b)


class TestDescribe:
    def test_all_descriptions_json_serialisable(self):
        injectors = [
            StuckAtInjector(stuck_on_rate=0.01),
            VariationInjector(sigma=0.1, distribution="lognormal"),
            DriftInjector(elapsed=3600.0),
            WearInjector(cycles=1e6),
            CompositeInjector(
                VariationInjector(sigma=0.1), StuckAtInjector()
            ),
        ]
        for injector in injectors:
            payload = json.dumps(injector.describe())
            assert injector.describe()["type"] in payload
