"""Health probe — BIST-style column fault detection."""

import numpy as np
import pytest

from repro.errors import MappingError
from repro.faults import HealthProbe, StuckAtInjector
from repro.faults.injectors import FaultInjector
from repro.mapping import IdealBackend, compile_network
from repro.nn import Dense, ReLU, Sequential


class KillColumn(FaultInjector):
    """Test fault: pins one tile column to the lowest conductance."""

    def __init__(self, col: int) -> None:
        self.col = col

    def apply(self, conductances, rng, spec=None):
        g = np.array(conductances, dtype=float)
        if self.col < g.shape[1]:
            g[:, self.col] = 0.0 if spec is None else spec.g_min
        return g

    def describe(self):
        return {"type": "kill-column", "col": self.col}


@pytest.fixture
def network(rng):
    model = Sequential(
        [Dense(6, 5, rng=rng), ReLU(), Dense(5, 4, rng=rng)], name="toy"
    )
    return compile_network(model, IdealBackend(), clip_percentile=100)


class TestStimulus:
    def test_shape_and_amplitude(self):
        probe = HealthProbe(vectors=3, amplitude=0.5)
        x = probe.stimulus(8)
        assert x.shape == (4, 8)  # 3 random + all-ones
        assert np.all(x >= 0) and np.all(x <= 0.5)
        assert np.allclose(x[-1], 0.5)  # the row-sum vector

    def test_deterministic_in_seed_and_width(self):
        a = HealthProbe(seed=5).stimulus(8)
        b = HealthProbe(seed=5).stimulus(8)
        c = HealthProbe(seed=6).stimulus(8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_validation(self):
        with pytest.raises(MappingError):
            HealthProbe(threshold=0.0)
        with pytest.raises(MappingError):
            HealthProbe(amplitude=1.5)
        with pytest.raises(MappingError):
            HealthProbe(vectors=-1)
        with pytest.raises(MappingError):
            HealthProbe().stimulus(0)


class TestProbeLayer:
    def test_pristine_chip_is_healthy(self, network):
        probe = HealthProbe()
        reports = probe.probe_network(network, network)
        assert reports and all(r.healthy for r in reports.values())

    def test_flags_the_killed_column(self, network, rng):
        probe = HealthProbe()
        faulted = network.faulted(KillColumn(2), rng)
        report = probe.probe_layer(network.stages[0], faulted.stages[0])
        assert 2 in report.flagged
        assert report.worst() == pytest.approx(report.deviations[2])

    def test_flagged_sorted_worst_first(self, network, rng):
        probe = HealthProbe(threshold=0.01)
        faulted = network.faulted(StuckAtInjector(stuck_on_rate=0.3), rng)
        report = probe.probe_layer(network.stages[0], faulted.stages[0])
        devs = [report.deviations[c] for c in report.flagged]
        assert devs == sorted(devs, reverse=True)

    def test_geometry_mismatch_rejected(self, network, rng):
        other = compile_network(
            Sequential([Dense(6, 3, rng=rng)], name="other"), IdealBackend()
        )
        with pytest.raises(MappingError):
            HealthProbe().probe_layer(network.stages[0], other.stages[0])

    def test_probe_network_alignment_checked(self, network, rng):
        other = compile_network(
            Sequential([Dense(6, 5, rng=rng)], name="other"), IdealBackend()
        )
        with pytest.raises(MappingError):
            HealthProbe().probe_network(network, other)
