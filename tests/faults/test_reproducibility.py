"""Same-seed fault campaigns must persist byte-identical trial records.

This is the payoff of the seeded-RNG discipline RNG001 enforces: every
random draw in the campaign pipeline (dataset split, weight init,
training shuffles, fault masks, health-probe stimuli) derives from the
campaign seed, so two runs of the same spec are not merely statistically
similar — the JSON written to the store is identical down to the byte.
"""

import hashlib
import os

import pytest

from repro.faults import CampaignSpec, FaultCampaign
from repro.store import ArtifactStore


@pytest.fixture
def spec():
    return CampaignSpec(
        network="mlp-1",
        rates=(0.0, 0.05),
        sigmas=(0.0,),
        ages=(0.0,),
        trials=2,
        seed=0,
        n_samples=300,
        eval_samples=50,
        backend="ideal",
    )


def _record_digests(campaign: FaultCampaign) -> dict:
    """Map trial key -> sha256 of the persisted record bytes."""
    digests = {}
    for rate, sigma, age, trial in campaign.spec.points():
        key = campaign.trial_key(rate, sigma, age, trial)
        path = campaign.store.path_for(key)
        with open(path, "rb") as fh:
            digests[key] = hashlib.sha256(fh.read()).hexdigest()
    return digests


def _run_campaign(spec, tmp_path, label, **run_kwargs):
    store = ArtifactStore(str(tmp_path / label / "records"))
    campaign = FaultCampaign(spec, store=store)
    result = campaign.run(**run_kwargs)
    return campaign, result


class TestSeededCampaignReproducibility:
    def test_same_seed_runs_persist_identical_bytes(
        self, spec, tmp_path, monkeypatch
    ):
        # Separate model caches too: nothing may leak between the runs.
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "models-a"))
        campaign_a, result_a = _run_campaign(spec, tmp_path, "a")
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "models-b"))
        campaign_b, result_b = _run_campaign(spec, tmp_path, "b")

        digests_a = _record_digests(campaign_a)
        digests_b = _record_digests(campaign_b)
        assert digests_a.keys() == digests_b.keys()
        assert digests_a == digests_b

        for rec_a, rec_b in zip(result_a.records, result_b.records):
            assert rec_a == rec_b

    def test_different_seed_changes_faulty_records(
        self, spec, tmp_path, monkeypatch
    ):
        import dataclasses

        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "models"))
        campaign_a, result_a = _run_campaign(spec, tmp_path, "a")
        other = dataclasses.replace(spec, seed=1)
        campaign_b, result_b = _run_campaign(other, tmp_path, "b")

        # Fingerprints differ, so the keys differ; compare record bodies
        # at the faulty grid points, which must reflect the new streams.
        faulty_a = [r for r in result_a.records if r["rate"] > 0]
        faulty_b = [r for r in result_b.records if r["rate"] > 0]
        assert faulty_a != faulty_b

    def test_weight_init_derives_from_campaign_seed(self, tmp_path, monkeypatch):
        """Two fresh caches + same seed -> identical trained weights."""
        import numpy as np

        from repro.experiments.networks import get_benchmark_networks

        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "m1"))
        net_a = get_benchmark_networks(["mlp-1"], n_samples=200, seed=5)[0]
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "m2"))
        net_b = get_benchmark_networks(["mlp-1"], n_samples=200, seed=5)[0]

        params_a = net_a.model.parameters()
        params_b = net_b.model.parameters()
        assert len(params_a) == len(params_b)
        for pa, pb in zip(params_a, params_b):
            assert np.array_equal(pa.value, pb.value)

        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "m3"))
        net_c = get_benchmark_networks(["mlp-1"], n_samples=200, seed=6)[0]
        changed = any(
            not np.array_equal(pa.value, pc.value)
            for pa, pc in zip(params_a, net_c.model.parameters())
        )
        assert changed, "weight init must depend on the master seed"

    def test_trial_batch_persists_identical_bytes(
        self, spec, tmp_path, monkeypatch
    ):
        """Stacked evaluation (trial_batch > 1) is an execution detail:
        the persisted records match the serial run byte for byte."""
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "models"))
        campaign_a, result_a = _run_campaign(spec, tmp_path, "serial")
        campaign_b, result_b = _run_campaign(
            spec, tmp_path, "stacked", trial_batch=8
        )
        assert _record_digests(campaign_a) == _record_digests(campaign_b)
        for rec_a, rec_b in zip(result_a.records, result_b.records):
            assert rec_a == rec_b

    def test_process_parallel_persists_identical_bytes(
        self, spec, tmp_path, monkeypatch
    ):
        """Worker processes are an execution detail too: same bytes at
        workers=2 as serial, and the parallel run resumes from the
        store."""
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "models"))
        campaign_a, result_a = _run_campaign(spec, tmp_path, "serial")
        campaign_b, result_b = _run_campaign(
            spec, tmp_path, "parallel", workers=2, trial_batch=2
        )
        assert _record_digests(campaign_a) == _record_digests(campaign_b)
        for rec_a, rec_b in zip(result_a.records, result_b.records):
            assert rec_a == rec_b
        assert result_b.computed == len(spec.points())

        # Records merged by the parent are resumable: a second parallel
        # run serves everything from the store.
        campaign_c = FaultCampaign(spec, store=campaign_b.store)
        result_c = campaign_c.run(workers=2, trial_batch=2)
        assert result_c.computed == 0
        assert result_c.cached == len(spec.points())
        assert [r for r in result_c.records] == list(result_b.records)

    def test_store_layout_is_stable(self, spec, tmp_path, monkeypatch):
        """The on-disk file set (names, not just contents) is deterministic."""
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "models"))
        campaign, _ = _run_campaign(spec, tmp_path, "a")
        root = campaign.store.root
        listing = sorted(
            os.path.relpath(os.path.join(dirpath, name), root)
            for dirpath, _, names in os.walk(root)
            for name in names
        )
        expected = sorted(
            os.path.relpath(campaign.store.path_for(
                campaign.trial_key(r, s, a, t)), root)
            for r, s, a, t in spec.points()
        )
        persisted = [
            p for p in listing
            if not p.endswith((".manifest.json", ".lock"))
        ]
        assert persisted == expected
