"""Cross-module integration tests."""

import numpy as np
import pytest

from repro.baselines import all_designs
from repro.config import CircuitParameters
from repro.core.mac import SingleSpikeMAC
from repro.core.mvm import MVMMode, SingleSpikeMVM
from repro.core.pipeline import schedule_pipeline
from repro.datasets import make_mnist_like, train_test_split
from repro.mapping import PIMExecutor, ReSiPEBackend, compile_network
from repro.nn import Adam, Dense, ReLU, Sequential, Trainer
from repro.reram.crossbar import CrossbarArray


class TestCircuitVsVectorModel:
    """The transient circuit, the vectorised MVM and the closed form all
    agree — the chain of trust behind every higher-level result."""

    def test_mac_column_consistency(self, paper_params, rng):
        conductances = rng.uniform(1e-6, 2e-5, 4)
        times = rng.uniform(10e-9, 80e-9, 4)
        # Transient circuit.
        mac = SingleSpikeMAC(paper_params, conductances)
        circuit = mac.run(list(times)).t_out
        # Vectorised engine on a 4x1 crossbar with the same column.
        xb = CrossbarArray(4, 1)
        xb._g = conductances.reshape(4, 1).copy()  # bypass quantise for identity
        mvm = SingleSpikeMVM(xb, paper_params, MVMMode.EXACT)
        vector = float(mvm.output_times(times)[0])
        assert circuit == pytest.approx(vector, abs=10e-12)

    def test_pipeline_latency_matches_engine(self, paper_params):
        sched = schedule_pipeline(1, 1, paper_params.slice_length)
        assert sched.sample_latency == pytest.approx(paper_params.mvm_latency)


class TestTrainMapEvaluate:
    """Train a model, map it, check the hardware path preserves accuracy
    and the fidelity ladder is ordered."""

    @pytest.fixture(scope="class")
    def setup(self):
        data = make_mnist_like(800, seed=1)
        train, test = train_test_split(data.flattened())
        model = Sequential([Dense(784, 24), ReLU(), Dense(24, 10)], name="itest")
        trainer = Trainer(model, Adam(model.parameters(), lr=2e-3), batch_size=64)
        trainer.fit(train.images, train.labels, epochs=6)
        return model, train, test

    def test_hardware_accuracy_close_to_software(self, setup):
        model, train, test = setup
        net = compile_network(model, ReSiPEBackend(mode=MVMMode.EXACT))
        executor = PIMExecutor(net, train.images[:64])
        sw = float(np.mean(model.predict(test.images) == test.labels))
        hw = executor.accuracy(test.images, test.labels)
        assert sw - hw < 0.03  # the paper's <2.5% non-linearity drop band

    def test_fidelity_ladder(self, setup):
        """LINEAR >= EXACT >= EXACT+20% variation, in accuracy."""
        model, train, test = setup
        accs = {}
        for name, mode in (("linear", MVMMode.LINEAR), ("exact", MVMMode.EXACT)):
            net = compile_network(model, ReSiPEBackend(mode=mode))
            ex = PIMExecutor(net, train.images[:64])
            accs[name] = ex.accuracy(test.images, test.labels)
        net = compile_network(model, ReSiPEBackend(mode=MVMMode.EXACT))
        ex = PIMExecutor(net, train.images[:64])
        noisy = [
            ex.perturbed(np.random.default_rng(s), 0.20).accuracy(
                test.images, test.labels
            )
            for s in range(3)
        ]
        accs["noisy"] = float(np.mean(noisy))
        assert accs["linear"] >= accs["exact"] - 0.02
        assert accs["exact"] >= accs["noisy"] - 0.02


class TestDesignsOnRealWorkload:
    def test_all_designs_classify(self, rng):
        """Every Table II design can run the same trained layer with only
        modest functional error."""
        designs = all_designs(rows=16, cols=8)
        x = rng.random((8, 16))
        w = rng.random((16, 8))
        ref = x @ w
        for name, design in designs.items():
            y = np.asarray(design.mvm_values(x, w))
            assert np.abs(y - ref).max() / ref.max() < 0.05, name


class TestOperatingPointContrast:
    def test_calibrated_more_linear_than_paper(self, rng):
        """The calibrated point exists precisely because it reduces the
        end-to-end MVM error (DESIGN.md §1)."""
        w = rng.random((32, 8))
        x = rng.random((16, 32))
        errors = {}
        for label, params in (
            ("paper", CircuitParameters.paper()),
            ("calibrated", CircuitParameters.calibrated()),
        ):
            from repro.core.engine import ReSiPEEngine

            engine = ReSiPEEngine.from_normalised_weights(w, params)
            ref = x @ engine.normalised_weights
            y = engine.mvm_values(x)
            errors[label] = float(np.abs(y - ref).mean() / ref.mean())
        assert errors["calibrated"] < errors["paper"]
