"""Smoke tests: the runnable examples must stay runnable.

Only the fast examples run here (the training-heavy ones are exercised
through their underlying APIs elsewhere); each is executed as a real
subprocess so import paths, ``__main__`` guards and stdout formatting
are covered.
"""

import os
import subprocess
import sys

import pytest

_EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name: str, timeout: float = 120.0) -> str:
    path = os.path.join(_EXAMPLES_DIR, name)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "operating point" in out
        assert "single-spiking codec" in out
        assert "power efficiency" in out

    def test_pipelined_multilayer(self):
        out = run_example("pipelined_multilayer.py")
        assert "pipelined timeline" in out
        assert "initiation interval" in out
        assert "hand-off" in out

    def test_design_space_exploration(self):
        out = run_example("design_space_exploration.py")
        assert "Table II" in out
        assert "winner" in out
        assert "calibrated" in out


class TestCLIEntryPoint:
    def test_python_dash_m(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "table1"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr
        assert "This work" in result.stdout
