"""Fault-injection robustness tests (extension beyond the paper)."""

import numpy as np
import pytest

from repro.config import CircuitParameters
from repro.core.engine import ReSiPEEngine
from repro.reram.device import DeviceSpec
from repro.reram.variation import StuckAtFaultModel


@pytest.fixture(scope="module")
def engine():
    rng = np.random.default_rng(0)
    return ReSiPEEngine.from_normalised_weights(
        rng.random((32, 16)), CircuitParameters.calibrated()
    )


@pytest.fixture(scope="module")
def stimulus():
    return np.random.default_rng(1).random((16, 32))


class TestStuckAtFaults:
    def test_stuck_off_reduces_outputs(self, engine, stimulus):
        rng = np.random.default_rng(2)
        faults = StuckAtFaultModel(stuck_off_rate=0.3)
        faulty = engine.perturbed(rng, sigma=0.0, faults=faults)
        base = engine.mvm_values(stimulus)
        hit = faulty.mvm_values(stimulus)
        assert hit.mean() < base.mean()

    def test_stuck_on_increases_outputs(self, engine, stimulus):
        rng = np.random.default_rng(3)
        faults = StuckAtFaultModel(stuck_on_rate=0.3)
        faulty = engine.perturbed(rng, sigma=0.0, faults=faults)
        assert faulty.mvm_values(stimulus).mean() > engine.mvm_values(stimulus).mean()

    def test_error_monotone_in_fault_rate(self, engine, stimulus):
        base = engine.mvm_values(stimulus)
        errors = []
        for rate in (0.01, 0.05, 0.2):
            trial = []
            for seed in range(4):
                faults = StuckAtFaultModel(stuck_off_rate=rate)
                faulty = engine.perturbed(
                    np.random.default_rng(seed), 0.0, faults=faults
                )
                trial.append(np.abs(faulty.mvm_values(stimulus) - base).mean())
            errors.append(np.mean(trial))
        assert errors[0] < errors[1] < errors[2]

    def test_outputs_remain_physical_under_faults(self, engine, stimulus):
        """Even a badly damaged array produces finite, bounded spikes."""
        faults = StuckAtFaultModel(stuck_on_rate=0.4, stuck_off_rate=0.4)
        faulty = engine.perturbed(np.random.default_rng(4), 0.3, faults=faults)
        times = faulty.output_times(stimulus)
        assert np.all(np.isfinite(times))
        assert np.all(times >= 0)
        assert np.all(times <= faulty.params.slice_length)


class TestExtremeVariation:
    def test_survives_50_percent_sigma(self, engine, stimulus):
        noisy = engine.perturbed(np.random.default_rng(5), 0.5)
        y = noisy.mvm_values(stimulus)
        assert np.all(np.isfinite(y))

    def test_window_clipping_respected(self, engine):
        """Variation can never push a conductance outside the device
        window (the physical clip in VariationModel)."""
        noisy = engine.perturbed(np.random.default_rng(6), 0.8)
        g = noisy.array.conductances
        spec = noisy.array.spec
        assert np.all(g >= spec.g_min - 1e-18)
        assert np.all(g <= spec.g_max + 1e-18)


class TestNarrowWindowDevices:
    def test_low_dynamic_range_device_still_computes(self, stimulus):
        """A 4x window device (pessimistic ReRAM) still yields a usable
        engine — just with a compressed weight range."""
        spec = DeviceSpec(r_lrs=250e3, r_hrs=1e6)
        rng = np.random.default_rng(7)
        engine = ReSiPEEngine.from_normalised_weights(
            rng.random((32, 16)), CircuitParameters.calibrated(), spec=spec
        )
        y = engine.mvm_values(stimulus)
        assert np.all(np.isfinite(y))
        assert y.max() > 0
