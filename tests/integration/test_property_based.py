"""Hypothesis property tests on cross-module invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.config import CircuitParameters
from repro.core.encoding import SingleSpikeCodec
from repro.core.engine import ReSiPEEngine
from repro.core.mvm import MVMMode
from repro.core.nonlinearity import exact_mac_output, linear_mac_output
from repro.core.pipeline import schedule_pipeline
from repro.mapping.weight_mapping import map_signed_weights
from repro.mapping.tiling import tile_matrix

PARAMS = CircuitParameters.calibrated()

unit_floats = st.floats(0.0, 1.0, allow_nan=False)


class TestCodecProperties:
    @given(values=hnp.arrays(np.float64, (8,), elements=unit_floats))
    @settings(max_examples=40, deadline=None)
    def test_vector_round_trip(self, values):
        codec = SingleSpikeCodec()
        spikes = codec.encode_vector(values)
        assert np.allclose(codec.decode_vector(spikes), values, atol=1e-12)

    @given(a=unit_floats, b=unit_floats)
    @settings(max_examples=40, deadline=None)
    def test_order_preserving(self, a, b):
        codec = SingleSpikeCodec()
        if a < b:
            assert codec.times_from_values(a) <= codec.times_from_values(b)


class TestMACProperties:
    @given(
        times=hnp.arrays(np.float64, (8,), elements=st.floats(10e-9, 80e-9)),
        g_scale=st.floats(0.1, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_never_exceeds_linear(self, times, g_scale):
        g = np.full(8, g_scale * 2e-5)
        assert exact_mac_output(times, g, PARAMS) <= linear_mac_output(
            times, g, PARAMS
        ) * (1 + 1e-12)

    @given(scale=st.floats(0.1, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_linear_homogeneity(self, scale):
        """Eq. 6 is homogeneous: scaling all inputs scales the output."""
        g = np.full(8, 1e-5)
        t = np.full(8, 60e-9)
        base = linear_mac_output(t, g, PARAMS)
        scaled = linear_mac_output(t * scale, g, PARAMS)
        assert scaled == pytest.approx(base * scale, rel=1e-9)


class TestEngineProperties:
    @given(
        x=hnp.arrays(np.float64, (8,), elements=unit_floats),
    )
    @settings(max_examples=20, deadline=None)
    def test_outputs_nonnegative_and_finite(self, x):
        rng = np.random.default_rng(0)
        engine = ReSiPEEngine.from_normalised_weights(
            rng.random((8, 4)), PARAMS, mode=MVMMode.EXACT
        )
        y = engine.mvm_values(x)
        assert np.all(np.isfinite(y))
        assert np.all(y >= -1e-15)

    @given(
        x=hnp.arrays(np.float64, (8,), elements=unit_floats),
        y=hnp.arrays(np.float64, (8,), elements=unit_floats),
    )
    @settings(max_examples=20, deadline=None)
    def test_monotone_in_inputs(self, x, y):
        """If x <= y elementwise then engine(x) <= engine(y) — positivity
        of conductances makes the MVM monotone."""
        rng = np.random.default_rng(1)
        engine = ReSiPEEngine.from_normalised_weights(
            rng.random((8, 4)), PARAMS, mode=MVMMode.EXACT
        )
        lo = np.minimum(x, y)
        hi = np.maximum(x, y)
        assert np.all(engine.mvm_values(lo) <= engine.mvm_values(hi) + 1e-12)


class TestMappingProperties:
    @given(
        w=hnp.arrays(np.float64, (5, 4), elements=st.floats(-3, 3)),
        x=hnp.arrays(np.float64, (5,), elements=unit_floats),
    )
    @settings(max_examples=40, deadline=None)
    def test_differential_identity(self, w, x):
        diff = map_signed_weights(w)
        reconstructed = diff.scale * (x @ diff.positive - x @ diff.negative)
        assert np.allclose(reconstructed, x @ w, atol=1e-9)

    @given(
        rows=st.integers(1, 30),
        cols=st.integers(1, 30),
        tr=st.integers(1, 8),
        tc=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_tiled_matmul_identity(self, rows, cols, tr, tc):
        rng = np.random.default_rng(rows * 31 + cols)
        m = rng.random((rows, cols))
        x = rng.random(rows)
        grid = tile_matrix(m, tr, tc)
        out = grid.matmul_through(x, lambda xb, i, j: xb @ grid.tiles[i][j])
        assert np.allclose(out, x @ m, atol=1e-10)


class TestPipelineProperties:
    @given(layers=st.integers(1, 8), samples=st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_pipelined_never_slower(self, layers, samples):
        pipe = schedule_pipeline(layers, samples, 100e-9)
        serial = schedule_pipeline(layers, samples, 100e-9, pipelined=False)
        assert pipe.makespan <= serial.makespan

    @given(layers=st.integers(1, 8), samples=st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_task_count(self, layers, samples):
        sched = schedule_pipeline(layers, samples, 100e-9)
        assert len(sched.tasks) == 2 * layers * samples
