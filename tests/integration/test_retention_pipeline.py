"""Retention drift through the full engine/mapping stack."""

import numpy as np
import pytest

from repro.config import CircuitParameters
from repro.core.engine import ReSiPEEngine
from repro.core.mvm import MVMMode
from repro.mapping import PIMExecutor, ReSiPEBackend, compile_network
from repro.nn import Dense, ReLU, Sequential
from repro.reram.retention import RetentionModel


@pytest.fixture(scope="module")
def engine():
    rng = np.random.default_rng(0)
    return ReSiPEEngine.from_normalised_weights(
        rng.random((16, 8)), CircuitParameters.calibrated()
    )


class TestEngineAging:
    def test_aged_outputs_decay(self, engine, rng):
        retention = RetentionModel(nu=0.05)
        x = rng.random((8, 16))
        fresh = engine.mvm_values(x)
        old = engine.aged(retention, 1e6, rng).mvm_values(x)
        assert old.mean() < fresh.mean()

    def test_original_untouched(self, engine, rng):
        before = engine.array.conductances.copy()
        engine.aged(RetentionModel(nu=0.05), 1e6, rng)
        assert np.array_equal(engine.array.conductances, before)

    def test_zero_elapsed_identity(self, engine, rng):
        x = rng.random(16)
        aged = engine.aged(RetentionModel(nu=0.05), 0.0, rng)
        assert np.allclose(aged.mvm_values(x), engine.mvm_values(x))


class TestExecutorAging:
    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(1)
        model = Sequential([Dense(20, 12, rng=rng), ReLU(), Dense(12, 4, rng=rng)],
                           name="aging")
        net = compile_network(model, ReSiPEBackend(mode=MVMMode.EXACT))
        x = rng.random((32, 20))
        return PIMExecutor(net, x[:8]), x

    def test_aged_executor_differs(self, setup, rng):
        executor, x = setup
        retention = RetentionModel(nu=0.05, nu_sigma=0.3)
        fresh = executor.forward(x)
        aged = executor.aged(retention, 1e7, rng).forward(x)
        assert not np.allclose(fresh, aged)

    def test_differential_mapping_partially_cancels_uniform_drift(self, setup):
        """Uniform (zero-spread) drift scales both polarities equally, so
        the differential output merely scales — far more benign than the
        same magnitude of random variation."""
        executor, x = setup
        uniform = RetentionModel(nu=0.05, nu_sigma=0.0)
        fresh = executor.forward(x)
        aged = executor.aged(uniform, 1e6).forward(x)
        # Outputs shrink but stay highly correlated with the fresh ones.
        corr = np.corrcoef(fresh.ravel(), aged.ravel())[0, 1]
        assert corr > 0.99

    def test_baseline_tiles_age_as_noop(self, rng):
        from repro.mapping.backends import IdealBackend

        model = Sequential([Dense(6, 3, rng=rng)], name="tiny")
        net = compile_network(model, IdealBackend())
        executor = PIMExecutor(net, rng.random((4, 6)))
        x = rng.random((4, 6))
        aged = executor.aged(RetentionModel(nu=0.1), 1e9)
        assert np.allclose(executor.forward(x), aged.forward(x))
