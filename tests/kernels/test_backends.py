"""Compute backend resolution and the numpy-reference semantics.

The kernels layer is an *execution* knob: ``get_backend`` must resolve
names deterministically, refuse explicit requests for missing engines
(never silently degrade), and the numpy backend must be bit-identical
to the raw numpy expressions the serial reference path runs.
"""

import numpy as np
import pytest

import repro.kernels.backend as backend_mod
from repro.errors import ConfigurationError
from repro.kernels import (
    ComputeBackend,
    NumpyBackend,
    available_backends,
    get_backend,
)

HAVE_NUMBA = available_backends()["numba"]
HAVE_CUPY = available_backends()["cupy"]


class TestResolution:
    def test_none_returns_numpy_singleton(self):
        a = get_backend(None)
        b = get_backend(None)
        assert isinstance(a, NumpyBackend)
        assert a is b

    def test_name_numpy_is_same_singleton(self):
        assert get_backend("numpy") is get_backend(None)

    def test_instance_passes_through(self):
        instance = NumpyBackend()
        assert get_backend(instance) is instance

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_backend("fortran")

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed here")
    def test_explicit_numba_raises_when_missing(self):
        with pytest.raises(ConfigurationError, match="perf"):
            get_backend("numba")

    @pytest.mark.skipif(HAVE_CUPY, reason="cupy installed here")
    def test_explicit_cupy_raises_when_missing(self):
        with pytest.raises(ConfigurationError, match="cupy"):
            get_backend("cupy")

    def test_available_backends_shape(self):
        avail = available_backends()
        assert avail["numpy"] is True
        assert set(avail) == {"numpy", "numba", "cupy"}

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed here")
    def test_auto_falls_back_with_single_warning(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_AUTO_FALLBACK_WARNED", False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            be = get_backend("auto")
        assert isinstance(be, NumpyBackend)
        # Second resolution is silent: the degradation is telemetry, not
        # terminal spam.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert isinstance(get_backend("auto"), NumpyBackend)

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed here")
    def test_auto_fallback_counts_telemetry(self, monkeypatch):
        from repro import telemetry

        monkeypatch.setattr(backend_mod, "_AUTO_FALLBACK_WARNED", False)
        with telemetry.capture() as session:
            with pytest.warns(RuntimeWarning):
                get_backend("auto")
        assert session.registry.counter(
            "kernels.backend.fallback").value == 1

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_auto_selects_numba_when_available(self):
        from repro.kernels import NumbaBackend

        assert isinstance(get_backend("auto"), NumbaBackend)


class TestNumpyBackend:
    def test_matmul_shared_input_bit_identical(self, rng):
        x = rng.random((5, 16))
        w = rng.random((4, 16, 8))
        out = NumpyBackend().matmul(x, w)
        assert np.array_equal(out, np.matmul(x, w))
        for t in range(4):
            assert np.array_equal(out[t], x @ w[t])

    def test_matmul_per_trial_input_bit_identical(self, rng):
        x = rng.random((4, 5, 16))
        w = rng.random((4, 16, 8))
        out = NumpyBackend().matmul(x, w)
        for t in range(4):
            assert np.array_equal(out[t], x[t] @ w[t])

    def test_elementwise_defaults_are_numpy(self, rng):
        be = NumpyBackend()
        x = rng.random(32) - 0.5
        assert np.array_equal(be.exp(x), np.exp(x))
        assert np.array_equal(be.log1p(x), np.log1p(x))
        mask = x > 0
        assert np.array_equal(be.where(mask, x, 0.0),
                              np.where(mask, x, 0.0))

    def test_accumulate_is_in_place_banded_sum(self, rng):
        be = NumpyBackend()
        out = np.zeros((3, 5, 8))
        partial = rng.random((3, 5, 4))
        be.accumulate(out, slice(2, 6), partial)
        assert np.array_equal(out[..., 2:6], partial)
        assert np.all(out[..., :2] == 0)
        assert np.all(out[..., 6:] == 0)
        be.accumulate(out, slice(2, 6), partial)
        assert np.array_equal(out[..., 2:6], partial + partial)

    def test_is_compute_backend(self):
        assert isinstance(NumpyBackend(), ComputeBackend)


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
class TestNumbaBackend:
    """Bit-identity of the JIT kernels against the numpy reference."""

    @pytest.fixture(scope="class")
    def numba_backend(self):
        pytest.importorskip("numba")
        from repro.kernels import NumbaBackend

        return NumbaBackend()

    def test_shared_input_bit_identical(self, rng, numba_backend):
        x = rng.random((5, 16))
        w = rng.random((4, 16, 8))
        assert np.array_equal(numba_backend.matmul(x, w), np.matmul(x, w))

    def test_per_trial_input_bit_identical(self, rng, numba_backend):
        x = rng.random((4, 5, 16))
        w = rng.random((4, 16, 8))
        assert np.array_equal(numba_backend.matmul(x, w), np.matmul(x, w))

    def test_non_float64_falls_back(self, rng, numba_backend):
        x = rng.random((5, 16)).astype(np.float32)
        w = rng.random((4, 16, 8)).astype(np.float32)
        assert np.array_equal(numba_backend.matmul(x, w), np.matmul(x, w))

    def test_2d_weights_fall_back(self, rng, numba_backend):
        x = rng.random((5, 16))
        w = rng.random((16, 8))
        assert np.array_equal(numba_backend.matmul(x, w), np.matmul(x, w))
