"""Byte-identity contract: compute backends and worker counts are
execution knobs.

Choosing ``--backend`` / ``--compute-backend`` or a worker count must
never change a result bit: ``predict_trials`` output hashes, persisted
campaign record bytes, and trial fingerprints are all invariant.  Numba
legs skip cleanly when the ``perf`` extra is absent.
"""

import hashlib

import numpy as np
import pytest

from repro.config import CircuitParameters
from repro.core.mvm import MVMMode
from repro.faults import CampaignSpec, FaultCampaign
from repro.kernels import NumpyBackend, available_backends
from repro.mapping import PIMExecutor, ReSiPEBackend, compile_network
from repro.nn import Dense, ReLU, Sequential
from repro.store import ArtifactStore

HAVE_NUMBA = available_backends()["numba"]


def _hash_array(a: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(a).tobytes()).hexdigest()


@pytest.fixture
def executor(rng):
    model = Sequential(
        [Dense(12, 10, rng=rng), ReLU(), Dense(10, 4, rng=rng)],
        name="toy",
    )
    backend = ReSiPEBackend(
        params=CircuitParameters.calibrated(), mode=MVMMode.LINEAR
    )
    mapped = compile_network(model, backend)
    return PIMExecutor(mapped, rng.random((32, 12)))


class TestPredictTrialsBackendContract:
    def test_numpy_name_matches_default(self, rng, executor):
        clones = [executor.perturbed(rng, 0.1) for _ in range(3)]
        networks = [c.network for c in clones]
        x = rng.random((20, 12))
        base = executor.predict_trials(x, networks)
        named = executor.predict_trials(x, networks, backend="numpy")
        instance = executor.predict_trials(
            x, networks, backend=NumpyBackend()
        )
        assert _hash_array(base) == _hash_array(named)
        assert _hash_array(base) == _hash_array(instance)

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_numba_matches_numpy_hash(self, rng, executor):
        pytest.importorskip("numba")
        clones = [executor.perturbed(rng, 0.1) for _ in range(3)]
        networks = [c.network for c in clones]
        x = rng.random((20, 12))
        base = executor.predict_trials(x, networks, backend="numpy")
        jit = executor.predict_trials(x, networks, backend="numba")
        assert _hash_array(base) == _hash_array(jit)

    def test_forward_trials_backend_invariant(self, rng, executor):
        clones = [executor.perturbed(rng, 0.2) for _ in range(3)]
        networks = [c.network for c in clones]
        x = rng.random((6, 12))
        base = executor.forward_trials(x, networks)
        named = executor.forward_trials(x, networks, backend="numpy")
        assert _hash_array(base) == _hash_array(named)


@pytest.fixture
def spec():
    return CampaignSpec(
        network="mlp-1",
        rates=(0.0, 0.05),
        sigmas=(0.0,),
        ages=(0.0,),
        trials=2,
        seed=0,
        n_samples=300,
        eval_samples=50,
        backend="ideal",
    )


def _record_digests(campaign: FaultCampaign) -> dict:
    digests = {}
    for rate, sigma, age, trial in campaign.spec.points():
        key = campaign.trial_key(rate, sigma, age, trial)
        path = campaign.store.path_for(key)
        with open(path, "rb") as fh:
            digests[key] = hashlib.sha256(fh.read()).hexdigest()
    return digests


def _run_campaign(spec, tmp_path, label, **run_kwargs):
    store = ArtifactStore(str(tmp_path / label / "records"))
    campaign = FaultCampaign(spec, store=store)
    campaign.run(**run_kwargs)
    return campaign


class TestCampaignWorkerCountContract:
    def test_scheduler_worker_counts_persist_identical_bytes(
        self, spec, tmp_path, monkeypatch
    ):
        """Worker counts 1/2/4 route through the DAG scheduler
        differently (in-process vs pooled waves) yet persist the same
        record bytes."""
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "models"))
        digests = {}
        for workers in (1, 2, 4):
            campaign = _run_campaign(
                spec, tmp_path, f"w{workers}",
                workers=workers, trial_batch=2,
            )
            digests[workers] = _record_digests(campaign)
        assert digests[1] == digests[2]
        assert digests[1] == digests[4]

    def test_compute_backend_numpy_persists_identical_bytes(
        self, spec, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "models"))
        base = _record_digests(
            _run_campaign(spec, tmp_path, "default", trial_batch=2)
        )
        named = _record_digests(
            _run_campaign(spec, tmp_path, "numpy", trial_batch=2,
                          compute_backend="numpy")
        )
        assert base == named

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_compute_backend_numba_persists_identical_bytes(
        self, spec, tmp_path, monkeypatch
    ):
        pytest.importorskip("numba")
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "models"))
        base = _record_digests(
            _run_campaign(spec, tmp_path, "numpy", trial_batch=2,
                          compute_backend="numpy")
        )
        jit = _record_digests(
            _run_campaign(spec, tmp_path, "numba", trial_batch=2,
                          compute_backend="numba")
        )
        assert base == jit
