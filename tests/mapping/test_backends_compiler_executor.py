"""Backends, compiler and executor — the Fig. 7 machinery."""

import numpy as np
import pytest

from repro.baselines import LevelBasedPIM
from repro.config import CircuitParameters
from repro.core.mvm import MVMMode
from repro.errors import MappingError
from repro.mapping import (
    DesignBackend,
    IdealBackend,
    PIMExecutor,
    ReSiPEBackend,
    compile_network,
)
from repro.nn import Dense, Flatten, Conv2D, MaxPool2D, ReLU, Sequential


@pytest.fixture
def mlp(rng):
    model = Sequential([Dense(12, 8, rng=rng), ReLU(), Dense(8, 3, rng=rng)],
                       name="toy")
    return model


@pytest.fixture
def x_batch(rng):
    return rng.random((16, 12))


class TestBackends:
    def test_ideal_tile_is_matmul(self, rng):
        backend = IdealBackend()
        w = rng.random((8, 4))
        tile = backend.program(w)
        x = rng.random((3, 8))
        assert np.allclose(tile.matmul(x), x @ w)

    def test_ideal_perturbed(self, rng):
        tile = IdealBackend().program(rng.random((4, 4)))
        noisy = tile.perturbed(rng, 0.2)
        x = rng.random(4)
        assert not np.allclose(tile.matmul(x), noisy.matmul(x))

    def test_resipe_linear_tile_is_matmul(self, rng):
        backend = ReSiPEBackend(mode=MVMMode.LINEAR)
        w = rng.random((16, 8))
        tile = backend.program(w)
        x = rng.random((3, 16))
        assert np.allclose(tile.matmul(x), x @ w, atol=1e-9)

    def test_resipe_exact_tile_close(self, rng):
        backend = ReSiPEBackend(mode=MVMMode.EXACT)
        w = rng.random((16, 8))
        tile = backend.program(w)
        x = rng.random((3, 16))
        ref = x @ w
        assert np.abs(tile.matmul(x) - ref).max() / ref.max() < 0.15

    def test_resipe_tile_size_enforced(self, rng):
        backend = ReSiPEBackend()
        with pytest.raises(MappingError):
            backend.program(rng.random((64, 8)))

    def test_design_backend(self, rng):
        backend = DesignBackend(lambda r, c: LevelBasedPIM(r, c))
        w = rng.random((8, 4))
        tile = backend.program(w)
        x = rng.random((2, 8))
        assert np.abs(tile.matmul(x) - x @ w).max() < 0.1

    def test_design_backend_rejects_non_design(self):
        backend = DesignBackend(lambda r, c: object())
        with pytest.raises(MappingError):
            backend.program(np.zeros((2, 2)))


class TestCompiler:
    def test_stage_alignment(self, mlp):
        net = compile_network(mlp, IdealBackend())
        assert len(net.stages) == len(mlp.layers)
        assert net.stages[0] is not None
        assert net.stages[1] is None  # ReLU
        assert net.stages[2] is not None

    def test_tile_counts(self, mlp):
        net = compile_network(mlp, IdealBackend(max_rows=4, max_cols=4))
        # Layer 1 diff matrix is 13x8 (bias row): ceil(13/4)*ceil(8/4)=8 per polarity.
        assert net.stages[0].num_tiles == 16

    def test_rejects_unweighted_model(self):
        model = Sequential([ReLU()])
        with pytest.raises(MappingError):
            compile_network(model, IdealBackend())

    def test_mapped_matmul_matches_layer(self, mlp, rng):
        net = compile_network(
            mlp, IdealBackend(max_rows=5, max_cols=3), clip_percentile=100
        )
        stage = net.stages[0]
        x = rng.random((4, 12))
        expected = mlp.layers[0].forward(x)
        assert np.allclose(stage.matmul_with_bias_level(x, 1.0), expected, atol=1e-9)

    def test_perturbed_network_isolated(self, mlp, rng):
        net = compile_network(mlp, IdealBackend())
        clone = net.perturbed(rng, 0.3)
        x = rng.random((2, 12))
        a = net.stages[0].matmul_with_bias_level(x, 1.0)
        b = clone.stages[0].matmul_with_bias_level(x, 1.0)
        assert not np.allclose(a, b)


class TestExecutor:
    def test_ideal_backend_matches_software(self, mlp, x_batch):
        net = compile_network(mlp, IdealBackend(), clip_percentile=100)
        executor = PIMExecutor(net, x_batch[:8])
        hw = executor.forward(x_batch)
        sw = mlp(x_batch)
        assert np.allclose(hw, sw, atol=1e-6)

    def test_resipe_linear_matches_software(self, mlp, x_batch):
        # clip_percentile=100 disables tail clipping -> exact identity.
        net = compile_network(
            mlp, ReSiPEBackend(mode=MVMMode.LINEAR), clip_percentile=100
        )
        executor = PIMExecutor(net, x_batch[:8])
        assert np.allclose(executor.forward(x_batch), mlp(x_batch), atol=1e-6)

    def test_default_clipping_close_but_inexact(self, mlp, x_batch):
        net = compile_network(mlp, ReSiPEBackend(mode=MVMMode.LINEAR))
        executor = PIMExecutor(net, x_batch[:8])
        hw = executor.forward(x_batch)
        sw = mlp(x_batch)
        assert np.abs(hw - sw).max() / np.abs(sw).max() < 0.05

    def test_resipe_exact_close_after_calibration(self, mlp, x_batch):
        net = compile_network(mlp, ReSiPEBackend(mode=MVMMode.EXACT))
        executor = PIMExecutor(net, x_batch[:8])
        hw = executor.forward(x_batch)
        sw = mlp(x_batch)
        scale = np.abs(sw).max()
        assert np.abs(hw - sw).max() / scale < 0.1

    def test_gain_calibration_helps(self, mlp, x_batch):
        net_cal = compile_network(mlp, ReSiPEBackend(mode=MVMMode.EXACT))
        net_raw = compile_network(mlp, ReSiPEBackend(mode=MVMMode.EXACT))
        sw = mlp(x_batch)
        cal = PIMExecutor(net_cal, x_batch[:8], calibrate_gain=True)
        raw = PIMExecutor(net_raw, x_batch[:8], calibrate_gain=False)
        err_cal = np.abs(cal.forward(x_batch) - sw).mean()
        err_raw = np.abs(raw.forward(x_batch) - sw).mean()
        assert err_cal < err_raw

    def test_conv_network(self, rng):
        model = Sequential(
            [
                Conv2D(1, 4, kernel=3, pad=1, rng=rng), ReLU(), MaxPool2D(2),
                Flatten(), Dense(4 * 4 * 4, 3, rng=rng),
            ],
            name="cnn",
        )
        x = rng.random((6, 1, 8, 8))
        net = compile_network(
            model, ReSiPEBackend(mode=MVMMode.LINEAR), clip_percentile=100
        )
        executor = PIMExecutor(net, x[:4])
        assert np.allclose(executor.forward(x), model(x), atol=1e-6)

    def test_accuracy_and_predict(self, mlp, x_batch):
        net = compile_network(mlp, IdealBackend())
        executor = PIMExecutor(net, x_batch[:8])
        labels = mlp.predict(x_batch)
        assert executor.accuracy(x_batch, labels) == pytest.approx(1.0)

    def test_perturbed_executor_degrades(self, mlp, x_batch, rng):
        net = compile_network(mlp, ReSiPEBackend(mode=MVMMode.LINEAR))
        executor = PIMExecutor(net, x_batch[:8])
        base = executor.forward(x_batch)
        noisy = executor.perturbed(rng, 0.3).forward(x_batch)
        assert not np.allclose(base, noisy)

    def test_empty_calibration_rejected(self, mlp):
        net = compile_network(mlp, IdealBackend())
        with pytest.raises(MappingError):
            PIMExecutor(net, np.zeros((0, 12)))
