"""Bit-sliced weight mapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.mvm import MVMMode
from repro.errors import MappingError
from repro.mapping.backends import IdealBackend, ReSiPEBackend
from repro.mapping.bit_slicing import BitSlicingBackend, slice_weights
from repro.reram.device import DeviceSpec


class TestSliceWeights:
    def test_reconstruction_exact(self, rng):
        w = rng.random((8, 4))
        slices = slice_weights(w, total_bits=8, bits_per_slice=2)
        recombined = sum(scale * w_k for w_k, scale in slices)
        quantised = np.round(w * 255) / 255
        assert np.allclose(recombined, quantised, atol=1e-12)

    def test_slice_count(self, rng):
        slices = slice_weights(rng.random((4, 4)), 8, 2)
        assert len(slices) == 4

    def test_slice_values_are_low_precision(self, rng):
        for w_k, _ in slice_weights(rng.random((16, 16)), 8, 2):
            codes = w_k * 3
            assert np.allclose(codes, np.round(codes), atol=1e-9)

    def test_msb_slice_has_largest_scale(self, rng):
        scales = [s for _, s in slice_weights(rng.random((4, 4)), 8, 4)]
        assert scales == sorted(scales, reverse=True)

    @given(
        w=hnp.arrays(np.float64, (4, 3), elements=st.floats(0, 1)),
        bits=st.sampled_from([(4, 1), (4, 2), (8, 2), (8, 4), (6, 3)]),
    )
    @settings(max_examples=40, deadline=None)
    def test_reconstruction_property(self, w, bits):
        total, per_slice = bits
        slices = slice_weights(w, total, per_slice)
        recombined = sum(scale * w_k for w_k, scale in slices)
        levels = 2**total - 1
        quantised = np.round(w * levels) / levels
        assert np.allclose(recombined, quantised, atol=1e-12)

    def test_validation(self, rng):
        w = rng.random((2, 2))
        with pytest.raises(MappingError):
            slice_weights(w, 8, 3)  # not a divisor
        with pytest.raises(MappingError):
            slice_weights(w, 2, 4)
        with pytest.raises(MappingError):
            slice_weights(w * 3, 8, 2)  # out of range


class TestBitSlicingBackend:
    def test_ideal_inner_matches_quantised_matmul(self, rng):
        backend = BitSlicingBackend(total_bits=8, bits_per_slice=2,
                                    inner=IdealBackend())
        w = rng.random((8, 4))
        tile = backend.program(w)
        x = rng.random((3, 8))
        quantised = np.round(w * 255) / 255
        assert np.allclose(tile.matmul(x), x @ quantised, atol=1e-9)

    def test_default_inner_uses_quantised_devices(self):
        backend = BitSlicingBackend(total_bits=8, bits_per_slice=2)
        assert backend.inner.spec.levels == 4
        assert backend.slices_per_weight == 4

    def test_beats_direct_low_level_mapping(self, rng):
        """With 2-bit devices, 4-slice storage of 8-bit weights is far
        more accurate than programming the analog weight directly onto
        a 4-level cell — the reason bit slicing exists."""
        w = rng.random((16, 8))
        x = rng.random((8, 16))
        reference = x @ w

        coarse_spec = DeviceSpec(
            r_lrs=50e3, r_hrs=1e6, levels=4
        )
        direct = ReSiPEBackend(mode=MVMMode.LINEAR, spec=coarse_spec).program(w)
        sliced = BitSlicingBackend(
            total_bits=8, bits_per_slice=2,
            inner=ReSiPEBackend(mode=MVMMode.LINEAR, spec=coarse_spec),
        ).program(w)
        err_direct = np.abs(direct.matmul(x) - reference).mean()
        err_sliced = np.abs(sliced.matmul(x) - reference).mean()
        assert err_sliced < err_direct / 3

    def test_perturbed_propagates(self, rng):
        backend = BitSlicingBackend(total_bits=4, bits_per_slice=2)
        tile = backend.program(rng.random((8, 4)))
        x = rng.random(8)
        base = tile.matmul(x)
        noisy = tile.perturbed(rng, 0.2).matmul(x)
        assert not np.allclose(base, noisy)

    def test_validation(self):
        with pytest.raises(MappingError):
            BitSlicingBackend(total_bits=8, bits_per_slice=3)
        with pytest.raises(MappingError):
            BitSlicingBackend(total_bits=0)
