"""Chip-level deployment planner."""

import numpy as np
import pytest

from repro.config import CircuitParameters
from repro.core.mvm import MVMMode
from repro.errors import MappingError
from repro.mapping import ReSiPEBackend, compile_network, plan_deployment
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential


@pytest.fixture
def mlp_network(rng):
    model = Sequential([Dense(40, 16, rng=rng), ReLU(), Dense(16, 4, rng=rng)],
                       name="mlp")
    return compile_network(model, ReSiPEBackend(mode=MVMMode.LINEAR))


@pytest.fixture
def conv_network(rng):
    model = Sequential(
        [
            Conv2D(1, 4, kernel=3, pad=1, rng=rng), ReLU(), MaxPool2D(2),
            Flatten(), Dense(4 * 4 * 4, 4, rng=rng),
        ],
        name="cnn",
    )
    return compile_network(model, ReSiPEBackend(mode=MVMMode.LINEAR))


class TestMLPDeployment:
    def test_tile_accounting(self, mlp_network):
        report = plan_deployment(mlp_network)
        assert report.total_tiles == mlp_network.total_tiles()
        assert len(report.layers) == 2

    def test_dense_is_one_mvm(self, mlp_network):
        report = plan_deployment(mlp_network)
        assert all(l.mvms_per_input == 1 for l in report.layers)

    def test_energy_consistent_with_engine(self, mlp_network):
        from repro.core.power import ReSiPEPowerModel

        params = CircuitParameters.paper()
        engine = ReSiPEPowerModel(params)
        report = plan_deployment(mlp_network, params=params)
        expected = (
            report.total_tiles * engine.power() * engine.latency
        )
        assert report.energy_per_inference == pytest.approx(expected)

    def test_throughput_set_by_bottleneck(self, mlp_network):
        params = CircuitParameters.paper()
        report = plan_deployment(mlp_network, params=params)
        # Dense-only network: bottleneck is one MVM = 2 slices.
        assert report.throughput == pytest.approx(
            1.0 / (2 * params.slice_length)
        )

    def test_power_is_energy_times_rate(self, mlp_network):
        report = plan_deployment(mlp_network)
        assert report.average_power == pytest.approx(
            report.energy_per_inference * report.throughput
        )


class TestConvDeployment:
    def test_conv_mvm_count_is_output_positions(self, conv_network):
        report = plan_deployment(conv_network, input_hw=(8, 8))
        conv_layer = report.layers[0]
        assert conv_layer.mvms_per_input == 64  # 8x8 with pad=1, stride=1

    def test_pooling_traced(self, conv_network):
        report = plan_deployment(conv_network, input_hw=(8, 8))
        # Dense after 2x pooling: spatial reduced to 4x4 before flatten.
        assert report.layers[1].mvms_per_input == 1

    def test_conv_requires_input_hw(self, conv_network):
        with pytest.raises(MappingError):
            plan_deployment(conv_network)

    def test_conv_slower_than_mlp(self, conv_network, mlp_network):
        conv = plan_deployment(conv_network, input_hw=(8, 8))
        mlp = plan_deployment(mlp_network)
        assert conv.latency_per_inference > mlp.latency_per_inference
        assert conv.throughput < mlp.throughput

    def test_render(self, conv_network):
        text = plan_deployment(conv_network, input_hw=(8, 8)).render()
        assert "Deployment" in text
        assert "inferences/s" in text


class TestSpareBudget:
    def test_default_reserves_nothing(self, mlp_network):
        report = plan_deployment(mlp_network)
        assert report.spare_tiles == 0
        assert report.spare_fraction == pytest.approx(0.0)

    def test_spares_add_tiles_and_area(self, mlp_network):
        base = plan_deployment(mlp_network)
        spared = plan_deployment(mlp_network, spare_fraction=0.2)
        assert spared.spare_tiles > 0
        assert spared.area > base.area
        # Spares are reserve capacity: throughput/energy are untouched.
        assert spared.energy_per_inference == base.energy_per_inference
        assert spared.throughput == base.throughput

    def test_render_mentions_reserve(self, mlp_network):
        text = plan_deployment(mlp_network, spare_fraction=0.2).render()
        assert "spare tiles" in text

    def test_remap_log_attaches_and_renders(self, mlp_network):
        report = plan_deployment(mlp_network, spare_fraction=0.2)
        events = [
            {"layer": "dense-0", "column": 3, "action": "spare",
             "attempts": 1, "deviation": 0.2},
            {"layer": "dense-0", "column": 7, "action": "software",
             "attempts": 0, "deviation": 0.1},
        ]
        logged = report.with_remap_log(events)
        assert logged.remap_events == events
        assert report.remap_events == []  # original untouched
        text = logged.render()
        assert "remap log" in text

    def test_round_trip_preserves_spare_fields(self, mlp_network, tmp_path):
        from repro.mapping.deployment import DeploymentReport

        report = plan_deployment(mlp_network, spare_fraction=0.25)
        report = report.with_remap_log(
            [{"layer": "dense-0", "column": 1, "action": "spare",
              "attempts": 1, "deviation": 0.3}]
        )
        path = str(tmp_path / "spared.json")
        report.save(path)
        back = DeploymentReport.load(path)
        assert back == report


class TestReportPersistence:
    def test_save_load_round_trip(self, mlp_network, tmp_path):
        from repro.mapping.deployment import DeploymentReport

        report = plan_deployment(mlp_network)
        path = str(tmp_path / "report.json")
        report.save(path)
        back = DeploymentReport.load(path)
        assert back == report  # frozen dataclasses compare by value

    def test_load_corrupt_raises_artifact_error(self, tmp_path):
        from repro.errors import ArtifactError
        from repro.mapping.deployment import DeploymentReport

        path = str(tmp_path / "report.json")
        with open(path, "w") as fh:
            fh.write('{"network_name": "m", "layers": [')
        with pytest.raises(ArtifactError):
            DeploymentReport.load(path)

    def test_load_malformed_payload_raises_artifact_error(self, tmp_path):
        from repro.errors import ArtifactError
        from repro.mapping.deployment import DeploymentReport

        path = str(tmp_path / "report.json")
        with open(path, "w") as fh:
            fh.write('{"unexpected": true}')
        with pytest.raises(ArtifactError):
            DeploymentReport.load(path)
