"""Zero-row batches through the executor (the serving flush path).

The ``repro serve`` coalescer drains with a deliberate empty flush, so
``predict``/``predict_trials`` must be total on zero-row input instead
of crashing in ``np.concatenate``; ``accuracy`` variants reject the
undefined statistic with a clear :class:`ConfigurationError`.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mapping import IdealBackend, PIMExecutor, compile_network
from repro.nn import Dense, ReLU, Sequential
from repro.runtime import trial_rng


@pytest.fixture
def executor(rng):
    model = Sequential(
        [Dense(12, 8, rng=rng), ReLU(), Dense(8, 4, rng=rng)], name="toy"
    )
    mapped = compile_network(model, IdealBackend())
    return PIMExecutor(mapped, rng.random((16, 12)))


class TestSerialPath:
    def test_predict_empty_returns_empty_labels(self, executor):
        out = executor.predict(np.zeros((0, 12)))
        assert out.shape == (0,)
        assert np.issubdtype(out.dtype, np.integer)

    def test_predict_empty_counts_no_launches(self, executor):
        executor.reset_stats()
        executor.predict(np.zeros((0, 12)))
        assert executor.total_mvm_launches() == 0

    def test_accuracy_empty_raises(self, executor):
        with pytest.raises(ConfigurationError, match="empty"):
            executor.accuracy(np.zeros((0, 12)), np.zeros(0))


class TestStackedPath:
    @pytest.fixture
    def clones(self, executor):
        return [
            executor.perturbed(trial_rng(0, f"empty|{t}"), 0.1).network
            for t in range(3)
        ]

    def test_predict_trials_empty_is_t_by_zero(self, executor, clones):
        out = executor.predict_trials(np.zeros((0, 12)), clones)
        assert out.shape == (3, 0)
        assert np.issubdtype(out.dtype, np.integer)

    def test_predict_trials_empty_no_networks(self, executor):
        out = executor.predict_trials(np.zeros((0, 12)), [])
        assert out.shape == (0, 0)

    def test_accuracy_trials_empty_raises(self, executor, clones):
        with pytest.raises(ConfigurationError, match="empty"):
            executor.accuracy_trials(np.zeros((0, 12)), np.zeros(0), clones)

    def test_nonempty_still_matches_serial(self, executor, clones, rng):
        """The early return must not perturb the populated path."""
        x = rng.random((5, 12))
        stacked = executor.predict_trials(x, clones)
        for t, network in enumerate(clones):
            serial = executor._clone_with_network(network).predict(x)
            assert np.array_equal(stacked[t], serial)
