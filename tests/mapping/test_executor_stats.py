"""Executor hardware-activity instrumentation."""

import numpy as np
import pytest

from repro.config import CircuitParameters
from repro.core.mvm import MVMMode
from repro.core.power import ReSiPEPowerModel
from repro.mapping import PIMExecutor, ReSiPEBackend, compile_network
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential


@pytest.fixture
def executor(rng):
    model = Sequential([Dense(20, 12, rng=rng), ReLU(), Dense(12, 4, rng=rng)],
                       name="stats")
    net = compile_network(model, ReSiPEBackend(mode=MVMMode.LINEAR))
    return PIMExecutor(net, rng.random((8, 20))), net


class TestLaunchCounting:
    def test_calibration_not_counted(self, executor):
        ex, _ = executor
        assert ex.total_mvm_launches() == 0

    def test_dense_counts(self, executor, rng):
        ex, net = executor
        batch = rng.random((10, 20))
        ex.forward(batch)
        stats = ex.stats()
        for stage in net.mapped_layers():
            assert stats[stage.name] == 10 * stage.num_tiles

    def test_accumulates_across_calls(self, executor, rng):
        ex, _ = executor
        ex.forward(rng.random((4, 20)))
        ex.forward(rng.random((6, 20)))
        first_layer = next(iter(ex.stats()))
        per_sample = ex.stats()[first_layer] // 10
        assert ex.stats()[first_layer] == 10 * per_sample

    def test_reset(self, executor, rng):
        ex, _ = executor
        ex.forward(rng.random((4, 20)))
        ex.reset_stats()
        assert ex.total_mvm_launches() == 0

    def test_conv_counts_positions(self, rng):
        model = Sequential(
            [
                Conv2D(1, 4, kernel=3, pad=1, rng=rng), ReLU(), MaxPool2D(2),
                Flatten(), Dense(4 * 4 * 4, 3, rng=rng),
            ],
            name="conv-stats",
        )
        net = compile_network(model, ReSiPEBackend(mode=MVMMode.LINEAR))
        ex = PIMExecutor(net, rng.random((2, 1, 8, 8)))
        ex.reset_stats()
        ex.forward(rng.random((3, 1, 8, 8)))
        conv_stage = net.mapped_layers()[0]
        # 3 samples x 64 output positions per sample.
        assert ex.stats()[conv_stage.name] == 3 * 64 * conv_stage.num_tiles

    def test_clones_start_clean(self, executor, rng):
        ex, _ = executor
        ex.forward(rng.random((4, 20)))
        clone = ex.perturbed(rng, 0.1)
        assert clone.total_mvm_launches() == 0


class TestEnergyEstimate:
    def test_energy_scales_with_activity(self, executor, rng):
        ex, _ = executor
        model = ReSiPEPowerModel(CircuitParameters.paper())
        ex.forward(rng.random((5, 20)))
        e5 = ex.energy_estimate(model)
        ex.forward(rng.random((5, 20)))
        assert ex.energy_estimate(model) == pytest.approx(2 * e5)

    def test_energy_matches_hand_calc(self, executor, rng):
        ex, _ = executor
        model = ReSiPEPowerModel(CircuitParameters.paper())
        ex.forward(rng.random((1, 20)))
        expected = ex.total_mvm_launches() * model.power() * model.latency
        assert ex.energy_estimate(model) == pytest.approx(expected)
