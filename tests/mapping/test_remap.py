"""Detect-and-remap graceful degradation."""

import numpy as np
import pytest

from repro.errors import MappingError
from repro.faults import HealthProbe, StuckAtInjector
from repro.faults.injectors import FaultInjector
from repro.mapping import (
    IdealBackend,
    PIMExecutor,
    compile_network,
    detect_and_remap,
    spare_columns_for,
)
from repro.nn import Dense, ReLU, Sequential


class KillColumns(FaultInjector):
    """Test fault: zeroes the given tile columns."""

    def __init__(self, cols) -> None:
        self.cols = tuple(cols)

    def apply(self, conductances, rng, spec=None):
        g = np.array(conductances, dtype=float)
        for col in self.cols:
            if col < g.shape[1]:
                g[:, col] = 0.0 if spec is None else spec.g_min
        return g

    def describe(self):
        return {"type": "kill-columns", "cols": list(self.cols)}


@pytest.fixture
def model(rng):
    return Sequential(
        [Dense(6, 5, rng=rng), ReLU(), Dense(5, 4, rng=rng)], name="toy"
    )


@pytest.fixture
def network(model):
    return compile_network(model, IdealBackend(), clip_percentile=100)


@pytest.fixture
def probe():
    return HealthProbe(threshold=0.02)


class TestSpareBudget:
    def test_budget_is_ceil_fraction(self):
        assert spare_columns_for(10, 0.25) == 3
        assert spare_columns_for(10, 0.0) == 0
        assert spare_columns_for(1, 0.01) == 1  # always at least one

    def test_validation(self):
        with pytest.raises(MappingError):
            spare_columns_for(0, 0.1)
        with pytest.raises(MappingError):
            spare_columns_for(10, 1.5)


class TestDetectAndRemap:
    def test_spare_recovers_exact_output(self, network, probe, rng):
        faulted = network.faulted(KillColumns([1]), rng)
        result = detect_and_remap(
            network, faulted, IdealBackend(), probe, spare_fraction=0.5
        )
        assert result.spare_cols >= 1
        # Clean spares re-programmed from the stored weights restore
        # the pristine response exactly on the ideal backend.
        for pristine, repaired in zip(network.stages, result.network.stages):
            if pristine is None:
                continue
            width = pristine.diff.rows - 1
            xs = probe.stimulus(width)
            assert np.allclose(
                repaired.matmul(xs), pristine.matmul(xs), atol=1e-9
            )

    def test_budget_exhaustion_falls_back_to_software(self, network, probe, rng):
        faulted = network.faulted(KillColumns([0, 2]), rng)
        result = detect_and_remap(
            network, faulted, IdealBackend(), probe, spare_fraction=0.0
        )
        assert result.spare_cols == 0
        assert result.software_cols >= 2
        # Software fallback is exact digital math — outputs match pristine.
        for pristine, repaired in zip(network.stages, result.network.stages):
            if pristine is None:
                continue
            xs = probe.stimulus(pristine.diff.rows - 1)
            assert np.allclose(
                repaired.matmul(xs), pristine.matmul(xs), atol=1e-9
            )

    def test_healthy_network_passes_through(self, network, probe):
        result = detect_and_remap(network, network, IdealBackend(), probe)
        assert result.flagged_cols == 0
        assert result.network.stages[0] is network.stages[0]

    def test_records_and_events(self, network, probe, rng):
        faulted = network.faulted(KillColumns([1, 3]), rng)
        result = detect_and_remap(
            network, faulted, IdealBackend(), probe, spare_fraction=0.5
        )
        events = result.events()
        assert len(events) == result.flagged_cols
        devs = [e["deviation"] for e in events]
        assert devs == sorted(devs, reverse=True)
        assert all(e["action"] in ("spare", "software") for e in events)

    def test_faulty_spares_retry_then_degrade(self, network, probe):
        # Injector that kills every column: spares can never verify.
        rng = np.random.default_rng(0)
        killer = KillColumns(range(10))
        faulted = network.faulted(killer, rng)
        result = detect_and_remap(
            network, faulted, IdealBackend(), probe,
            injector=killer, rng=rng, spare_fraction=1.0, max_retries=1,
        )
        assert result.spare_cols == 0
        assert result.software_cols == result.flagged_cols > 0
        spare_attempts = [
            r.attempts for r in result.records if r.attempts > 0
        ]
        assert spare_attempts and all(a == 2 for a in spare_attempts)

    def test_rng_required_with_injector(self, network, probe, rng):
        faulted = network.faulted(KillColumns([1]), rng)
        with pytest.raises(MappingError):
            detect_and_remap(
                network, faulted, IdealBackend(), probe,
                injector=KillColumns([1]),
            )

    def test_remapped_layers_are_terminal(self, network, probe, rng):
        faulted = network.faulted(KillColumns([1]), rng)
        result = detect_and_remap(
            network, faulted, IdealBackend(), probe, spare_fraction=0.5
        )
        patched = result.network.stages[0]
        with pytest.raises(MappingError):
            patched.perturbed(rng, 0.1)
        with pytest.raises(MappingError):
            patched.faulted(KillColumns([1]), rng)


class TestExecutorIntegration:
    def test_remapped_executor_matches_pristine(self, model, network, rng):
        x = rng.random((32, 6))
        executor = PIMExecutor(network, x[:8])
        pristine_out = executor.forward(x)

        faulted = executor.faulted(KillColumns([1]), rng)
        assert not np.allclose(faulted.forward(x), pristine_out)

        probe = HealthProbe(threshold=0.02)
        result = detect_and_remap(
            network, faulted.network, IdealBackend(), probe,
            spare_fraction=0.5,
        )
        repaired = executor._clone_with_network(result.network)
        assert np.allclose(repaired.forward(x), pristine_out, atol=1e-9)

    def test_patched_layer_counts_spare_tiles(self, network, probe, rng):
        faulted = network.faulted(KillColumns([1]), rng)
        result = detect_and_remap(
            network, faulted, IdealBackend(), probe, spare_fraction=0.5
        )
        patched = result.network.stages[0]
        if result.spare_cols:
            assert patched.num_tiles > network.stages[0].num_tiles
