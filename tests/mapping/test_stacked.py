"""Trial-stacked Monte-Carlo kernels: bit-identity to serial paths.

The contract under the parallel campaign runtime: evaluating ``T``
conductance realizations through the stacked ``(T, rows, cols)`` kernels
gives, slice by slice, the *same bits* as evaluating each realization
alone.  Everything here asserts ``np.array_equal``, not ``allclose``.
"""

import numpy as np
import pytest

from repro.config import CircuitParameters
from repro.core.mvm import MVMMode, SingleSpikeMVM
from repro.errors import ConfigurationError, MappingError, ShapeError
from repro.mapping import (
    IdealBackend,
    PIMExecutor,
    ReSiPEBackend,
    compile_network,
    stack_tiles,
)
from repro.mapping.stacked import stack_networks
from repro.nn import Dense, ReLU, Sequential
from repro.reram.crossbar import CrossbarArray, StackedCrossbar
from repro.reram.nonideal import IRDropSolver, WireParasitics
from repro.reram.variation import VariationModel


def _variants(rng, trials=4, rows=16, cols=8):
    base = CrossbarArray(rows, cols)
    base.program_normalised(rng.random((rows, cols)))
    model = VariationModel(sigma=0.1)
    return [base.perturb(rng, variation=model) for _ in range(trials)]


class TestStackedCrossbar:
    def test_mvm_matches_per_trial(self, rng):
        arrays = _variants(rng)
        stacked = StackedCrossbar.from_arrays(arrays)
        v = rng.random((5, 16))
        out = stacked.mvm_currents(v)
        assert out.shape == (4, 5, 8)
        for t, array in enumerate(arrays):
            assert np.array_equal(out[t], v @ array.conductances)

    def test_column_totals_match_per_trial(self, rng):
        arrays = _variants(rng)
        stacked = StackedCrossbar.from_arrays(arrays)
        totals = stacked.column_total_conductance()
        for t, array in enumerate(arrays):
            assert np.array_equal(totals[t], array.column_total_conductance())

    def test_rejects_mismatched_arrays(self, rng):
        small = CrossbarArray(4, 4)
        big = CrossbarArray(8, 4)
        with pytest.raises(ShapeError):
            StackedCrossbar.from_arrays([small, big])

    def test_rejects_non_3d(self, rng):
        with pytest.raises(ShapeError):
            StackedCrossbar(rng.random((4, 4)), CrossbarArray(4, 4).spec)

    def test_mvm_shape_checked(self, rng):
        stacked = StackedCrossbar.from_arrays(_variants(rng))
        with pytest.raises(ShapeError):
            stacked.mvm_currents(rng.random(7))


class TestEvaluateStacked:
    @pytest.mark.parametrize("mode", [MVMMode.EXACT, MVMMode.LINEAR])
    def test_bit_identical_to_serial(self, rng, calibrated_params, mode):
        arrays = _variants(rng)
        stacked = StackedCrossbar.from_arrays(arrays)
        mvm = SingleSpikeMVM(arrays[0], calibrated_params, mode=mode)
        times = rng.uniform(10e-9, 80e-9, (3, 16))
        result = mvm.evaluate_stacked(times, stacked)
        assert result.times.shape == (4, 3, 8)
        for t, array in enumerate(arrays):
            serial = SingleSpikeMVM(array, calibrated_params, mode=mode)
            ref = serial.evaluate(times)
            assert np.array_equal(result.times[t], ref.times)
            assert np.array_equal(result.fired[t], ref.fired)
            assert np.array_equal(result.v_out[t], ref.v_out)

    def test_per_trial_inputs(self, rng, calibrated_params):
        arrays = _variants(rng)
        stacked = StackedCrossbar.from_arrays(arrays)
        mvm = SingleSpikeMVM(arrays[0], calibrated_params)
        times = rng.uniform(10e-9, 80e-9, (4, 3, 16))
        result = mvm.evaluate_stacked(times, stacked)
        for t, array in enumerate(arrays):
            serial = SingleSpikeMVM(array, calibrated_params)
            assert np.array_equal(result.times[t],
                                  serial.evaluate(times[t]).times)

    def test_trial_count_mismatch(self, rng, calibrated_params):
        stacked = StackedCrossbar.from_arrays(_variants(rng))
        mvm = SingleSpikeMVM(CrossbarArray(16, 8), calibrated_params)
        with pytest.raises(ShapeError):
            mvm.evaluate_stacked(rng.random((3, 2, 16)), stacked)

    def test_parasitic_mode_rejected(self, rng, calibrated_params):
        arrays = _variants(rng)
        thevenin = IRDropSolver(
            arrays[0], WireParasitics()
        ).column_thevenin()
        mvm = SingleSpikeMVM(arrays[0], calibrated_params,
                             parasitic_thevenin=thevenin)
        with pytest.raises(ConfigurationError):
            mvm.evaluate_stacked(
                rng.uniform(10e-9, 80e-9, 16),
                StackedCrossbar.from_arrays(arrays),
            )


class TestStackTiles:
    @pytest.mark.parametrize("backend", [
        IdealBackend(),
        ReSiPEBackend(params=CircuitParameters.calibrated(),
                      mode=MVMMode.LINEAR),
        ReSiPEBackend(params=CircuitParameters.calibrated(),
                      mode=MVMMode.EXACT),
    ])
    def test_bit_identical_to_serial(self, rng, backend):
        base = backend.program(rng.random((16, 6)))
        tiles = [base.perturbed(rng, 0.1) for _ in range(3)]
        stacked = stack_tiles(tiles)
        x = rng.random((5, 16))
        out = stacked.matmul(x)
        assert out.shape == (3, 5, 6)
        for t, tile in enumerate(tiles):
            assert np.array_equal(out[t], tile.matmul(x))

    def test_empty_rejected(self):
        with pytest.raises(MappingError):
            stack_tiles([])

    def test_mixed_types_rejected(self, rng):
        w = rng.random((8, 4))
        ideal = IdealBackend().program(w)
        resipe = ReSiPEBackend(
            params=CircuitParameters.calibrated(), mode=MVMMode.LINEAR
        ).program(w)
        with pytest.raises(MappingError):
            stack_tiles([ideal, resipe])


class TestExecutorTrials:
    @pytest.fixture
    def executor(self, rng):
        model = Sequential(
            [Dense(12, 10, rng=rng), ReLU(), Dense(10, 4, rng=rng)],
            name="toy",
        )
        backend = ReSiPEBackend(
            params=CircuitParameters.calibrated(), mode=MVMMode.LINEAR
        )
        mapped = compile_network(model, backend)
        return PIMExecutor(mapped, rng.random((32, 12)))

    def test_forward_trials_bit_identical(self, rng, executor):
        clones = [executor.perturbed(rng, 0.1) for _ in range(3)]
        x = rng.random((6, 12))
        stacked_out = executor.forward_trials(x, [c.network for c in clones])
        assert stacked_out.shape[0] == 3
        for t, clone in enumerate(clones):
            assert np.array_equal(stacked_out[t], clone.forward(x))

    def test_accuracy_trials_bit_identical(self, rng, executor):
        clones = [executor.perturbed(rng, 0.2) for _ in range(3)]
        x = rng.random((20, 12))
        labels = rng.integers(0, 4, 20)
        accs = executor.accuracy_trials(x, labels, [c.network for c in clones])
        assert accs.shape == (3,)
        for t, clone in enumerate(clones):
            assert float(accs[t]) == pytest.approx(
                clone.accuracy(x, labels), abs=0.0
            )

    def test_stack_networks_rejects_mixed_models(self, rng, executor):
        other_model = Sequential(
            [Dense(12, 10, rng=rng), ReLU(), Dense(10, 4, rng=rng)],
            name="other",
        )
        backend = ReSiPEBackend(
            params=CircuitParameters.calibrated(), mode=MVMMode.LINEAR
        )
        other = compile_network(other_model, backend)
        with pytest.raises(MappingError):
            stack_networks([executor.network, other])
