"""Matrix tiling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError, ShapeError
from repro.mapping.tiling import tile_matrix


class TestTiling:
    def test_exact_fit(self, rng):
        m = rng.random((8, 8))
        grid = tile_matrix(m, 4, 4)
        assert grid.row_bands == 2
        assert grid.col_bands == 2
        assert grid.num_tiles == 4

    def test_ragged_edges(self, rng):
        grid = tile_matrix(rng.random((10, 7)), 4, 4)
        assert grid.row_bands == 3
        assert grid.col_bands == 2
        assert grid.tiles[2][1].shape == (2, 3)

    def test_single_tile(self, rng):
        m = rng.random((3, 3))
        grid = tile_matrix(m, 32, 32)
        assert grid.num_tiles == 1
        assert np.array_equal(grid.tiles[0][0], m)

    @given(
        rows=st.integers(1, 40),
        cols=st.integers(1, 40),
        tile=st.integers(1, 16),
    )
    @settings(max_examples=40, deadline=None)
    def test_reassembly_property(self, rows, cols, tile):
        m = np.arange(rows * cols, dtype=float).reshape(rows, cols)
        grid = tile_matrix(m, tile, tile)
        assert np.array_equal(grid.reassemble(), m)

    def test_matmul_through_matches_direct(self, rng):
        m = rng.random((20, 13))
        grid = tile_matrix(m, 6, 5)
        x = rng.random((4, 20))
        out = grid.matmul_through(x, lambda xb, i, j: xb @ grid.tiles[i][j])
        assert np.allclose(out, x @ m)

    def test_matmul_through_1d(self, rng):
        m = rng.random((9, 5))
        grid = tile_matrix(m, 4, 4)
        x = rng.random(9)
        out = grid.matmul_through(x, lambda xb, i, j: xb @ grid.tiles[i][j])
        assert np.allclose(out, x @ m)

    def test_matmul_shape_checked(self, rng):
        grid = tile_matrix(rng.random((8, 8)), 4, 4)
        with pytest.raises(ShapeError):
            grid.matmul_through(rng.random(7), lambda xb, i, j: xb)

    def test_validation(self):
        with pytest.raises(MappingError):
            tile_matrix(np.zeros(4), 4, 4)
        with pytest.raises(MappingError):
            tile_matrix(np.zeros((4, 4)), 0, 4)
