"""Differential weight mapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import MappingError
from repro.mapping.weight_mapping import DifferentialWeights, map_signed_weights


class TestMapping:
    def test_reconstruction(self, rng):
        w = rng.normal(size=(8, 4))
        diff = map_signed_weights(w)
        recon, bias = diff.reconstruct()
        assert bias is None
        assert np.allclose(recon, w)

    def test_bias_folding(self, rng):
        w = rng.normal(size=(8, 4))
        b = rng.normal(size=4)
        diff = map_signed_weights(w, b)
        assert diff.has_bias_row
        assert diff.rows == 9
        recon, bias = diff.reconstruct()
        assert np.allclose(recon, w)
        assert np.allclose(bias, b)

    def test_polarity_split_disjoint(self, rng):
        diff = map_signed_weights(rng.normal(size=(6, 6)))
        overlap = (diff.positive > 0) & (diff.negative > 0)
        assert not overlap.any()

    def test_matrices_in_unit_range(self, rng):
        diff = map_signed_weights(rng.normal(scale=100.0, size=(5, 5)))
        for m in (diff.positive, diff.negative):
            assert m.min() >= 0.0
            assert m.max() <= 1.0

    def test_scale_is_max_abs(self, rng):
        w = rng.normal(size=(5, 5))
        assert map_signed_weights(w).scale == pytest.approx(np.abs(w).max())

    def test_zero_matrix(self):
        diff = map_signed_weights(np.zeros((3, 3)))
        assert diff.scale == pytest.approx(1.0)
        recon, _ = diff.reconstruct()
        assert np.all(recon == 0)

    @given(
        w=hnp.arrays(
            np.float64, (6, 3),
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_differential_mvm_identity(self, w):
        """x @ W == scale * (x @ W+ - x @ W-) for any x — the algebraic
        backbone of the whole mapping path."""
        diff = map_signed_weights(w)
        x = np.linspace(0, 1, 6)
        direct = x @ w
        differential = diff.scale * (x @ diff.positive - x @ diff.negative)
        assert np.allclose(direct, differential, atol=1e-9)

    def test_augment_inputs(self, rng):
        diff = map_signed_weights(rng.normal(size=(4, 2)), rng.normal(size=2))
        x = rng.random((3, 4))
        aug = diff.augment_inputs(x)
        assert aug.shape == (3, 5)
        assert np.allclose(aug[:, 0], 1.0)

    def test_augment_noop_without_bias(self, rng):
        diff = map_signed_weights(rng.normal(size=(4, 2)))
        x = rng.random((3, 4))
        assert diff.augment_inputs(x) is x


class TestValidation:
    def test_rejects_non_2d(self):
        with pytest.raises(MappingError):
            map_signed_weights(np.zeros(4))

    def test_rejects_bias_shape(self):
        with pytest.raises(MappingError):
            map_signed_weights(np.zeros((4, 2)), np.zeros(3))

    def test_rejects_inconsistent_matrices(self):
        with pytest.raises(MappingError):
            DifferentialWeights(
                positive=np.zeros((2, 2)),
                negative=np.zeros((3, 2)),
                scale=1.0,
                has_bias_row=False,
            )

    def test_rejects_out_of_range(self):
        with pytest.raises(MappingError):
            DifferentialWeights(
                positive=np.full((2, 2), 2.0),
                negative=np.zeros((2, 2)),
                scale=1.0,
                has_bias_row=False,
            )
