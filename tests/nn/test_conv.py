"""Conv2D and pooling layers."""

import numpy as np
import pytest

from repro.errors import ShapeError, TrainingError
from repro.nn.conv import AvgPool2D, Conv2D, MaxPool2D, col2im, im2col


class TestIm2Col:
    def test_shapes(self, rng):
        x = rng.random((2, 3, 8, 8))
        cols, (h, w) = im2col(x, kernel=3, stride=1, pad=1)
        assert (h, w) == (8, 8)
        assert cols.shape == (2 * 64, 27)

    def test_stride_and_no_pad(self, rng):
        x = rng.random((1, 1, 6, 6))
        cols, (h, w) = im2col(x, kernel=2, stride=2, pad=0)
        assert (h, w) == (3, 3)
        assert cols.shape == (9, 4)

    def test_content_matches_naive(self, rng):
        x = rng.random((1, 2, 5, 5))
        cols, _ = im2col(x, kernel=3, stride=1, pad=0)
        # First patch = x[0, :, 0:3, 0:3] flattened channel-major.
        assert np.allclose(cols[0], x[0, :, 0:3, 0:3].reshape(-1))

    def test_col2im_adjoint(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the adjoint property that
        makes the conv backward pass correct."""
        x = rng.random((2, 3, 6, 6))
        cols, _ = im2col(x, kernel=3, stride=1, pad=1)
        y = rng.random(cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 1, 1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_kernel_too_large(self, rng):
        with pytest.raises(ShapeError):
            im2col(rng.random((1, 1, 4, 4)), kernel=6, stride=1, pad=0)


class TestConv2D:
    def test_matches_naive_convolution(self, rng):
        conv = Conv2D(2, 3, kernel=3, stride=1, pad=1, rng=rng)
        x = rng.random((1, 2, 5, 5))
        out = conv.forward(x)
        # Naive check at one output location.
        w = conv.weight.value  # (C*k*k, out)
        patch = np.pad(x[0], ((0, 0), (1, 1), (1, 1)))[:, 0:3, 0:3].reshape(-1)
        expected = patch @ w + conv.bias.value
        assert np.allclose(out[0, :, 0, 0], expected)

    def test_output_shape_strided(self, rng):
        conv = Conv2D(3, 8, kernel=3, stride=2, pad=1)
        out = conv.forward(rng.random((2, 3, 8, 8)))
        assert out.shape == (2, 8, 4, 4)

    def test_gradient_shapes(self, rng):
        conv = Conv2D(2, 4, kernel=3)
        x = rng.random((2, 2, 6, 6))
        out = conv.forward(x, training=True)
        dx = conv.backward(np.ones_like(out))
        assert dx.shape == x.shape
        assert conv.weight.grad.shape == conv.weight.value.shape

    def test_weight_gradient_numeric(self, rng):
        conv = Conv2D(1, 2, kernel=3, pad=1, rng=rng)
        x = rng.random((1, 1, 4, 4))
        g = rng.random((1, 2, 4, 4))
        conv.forward(x, training=True)
        conv.backward(g)
        analytic = conv.weight.grad.copy()

        eps = 1e-6
        w = conv.weight.value
        idx = (3, 1)
        old = w[idx]
        w[idx] = old + eps
        up = float((conv.forward(x) * g).sum())
        w[idx] = old - eps
        down = float((conv.forward(x) * g).sum())
        w[idx] = old
        assert analytic[idx] == pytest.approx((up - down) / (2 * eps), abs=1e-4)

    def test_backward_requires_training(self, rng):
        conv = Conv2D(1, 1)
        conv.forward(rng.random((1, 1, 4, 4)))
        with pytest.raises(TrainingError):
            conv.backward(np.zeros((1, 1, 4, 4)))

    def test_channel_validation(self, rng):
        conv = Conv2D(3, 4)
        with pytest.raises(ShapeError):
            conv.forward(rng.random((1, 2, 8, 8)))


class TestPooling:
    def test_maxpool_values(self):
        pool = MaxPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        assert np.allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_gradient_routes_to_max(self):
        pool = MaxPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        pool.forward(x, training=True)
        dx = pool.backward(np.ones((1, 1, 2, 2)))
        assert dx.sum() == pytest.approx(4.0)
        assert dx[0, 0, 1, 1] == pytest.approx(1.0)  # the max of the first window

    def test_maxpool_tie_breaking_single_route(self):
        pool = MaxPool2D(2)
        x = np.ones((1, 1, 2, 2))
        pool.forward(x, training=True)
        dx = pool.backward(np.ones((1, 1, 1, 1)))
        assert dx.sum() == pytest.approx(1.0)

    def test_avgpool_values(self):
        pool = AvgPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        assert out[0, 0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_avgpool_gradient_uniform(self):
        pool = AvgPool2D(2)
        x = np.ones((1, 1, 4, 4))
        pool.forward(x, training=True)
        dx = pool.backward(np.ones((1, 1, 2, 2)))
        assert np.allclose(dx, 0.25)

    def test_indivisible_rejected(self, rng):
        with pytest.raises(ShapeError):
            MaxPool2D(3).forward(rng.random((1, 1, 4, 4)))
