"""Dense/ReLU/Flatten/Dropout layers, with numeric gradient checks."""

import numpy as np
import pytest

from repro.errors import ShapeError, TrainingError
from repro.nn.layers import Dense, Dropout, Flatten, Parameter, ReLU


def numeric_gradient(f, x, eps=1e-6):
    """Central-difference gradient of scalar f at array x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        up = f()
        flat[i] = old - eps
        down = f()
        flat[i] = old
        gflat[i] = (up - down) / (2 * eps)
    return grad


class TestParameter:
    def test_zero_grad(self):
        p = Parameter("w", np.ones((2, 2)))
        p.grad += 1.0
        p.zero_grad()
        assert np.all(p.grad == 0)


class TestDense:
    def test_forward(self, rng):
        layer = Dense(4, 3)
        x = rng.random((5, 4))
        out = layer.forward(x)
        assert np.allclose(out, x @ layer.weight.value + layer.bias.value)

    def test_no_bias(self, rng):
        layer = Dense(4, 3, bias=False)
        assert layer.bias is None
        out = layer.forward(rng.random((2, 4)))
        assert out.shape == (2, 3)

    def test_weight_gradient_numeric(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = rng.random((4, 3))
        target_grad = rng.random((4, 2))

        def loss():
            return float((layer.forward(x) * target_grad).sum())

        layer.forward(x, training=True)
        layer.backward(target_grad)
        numeric = numeric_gradient(loss, layer.weight.value)
        assert np.allclose(layer.weight.grad, numeric, atol=1e-5)

    def test_input_gradient_numeric(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = rng.random((4, 3))
        target_grad = rng.random((4, 2))
        layer.forward(x, training=True)
        dx = layer.backward(target_grad)

        def loss():
            return float((layer.forward(x) * target_grad).sum())

        numeric = numeric_gradient(loss, x)
        assert np.allclose(dx, numeric, atol=1e-5)

    def test_bias_gradient(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = rng.random((4, 3))
        g = rng.random((4, 2))
        layer.forward(x, training=True)
        layer.backward(g)
        assert np.allclose(layer.bias.grad, g.sum(axis=0))

    def test_backward_requires_training_forward(self, rng):
        layer = Dense(3, 2)
        layer.forward(rng.random((2, 3)), training=False)
        with pytest.raises(TrainingError):
            layer.backward(np.zeros((2, 2)))

    def test_shape_validation(self, rng):
        layer = Dense(3, 2)
        with pytest.raises(ShapeError):
            layer.forward(rng.random((2, 5)))
        with pytest.raises(ShapeError):
            Dense(0, 2)


class TestReLU:
    def test_forward(self):
        relu = ReLU()
        x = np.array([[-1.0, 0.0, 2.0]])
        assert np.allclose(relu.forward(x), [[0.0, 0.0, 2.0]])

    def test_backward_masks(self):
        relu = ReLU()
        x = np.array([[-1.0, 3.0]])
        relu.forward(x, training=True)
        dx = relu.backward(np.array([[5.0, 5.0]]))
        assert np.allclose(dx, [[0.0, 5.0]])

    def test_backward_requires_forward(self):
        with pytest.raises(TrainingError):
            ReLU().backward(np.zeros((1, 1)))


class TestFlatten:
    def test_round_trip(self, rng):
        flat = Flatten()
        x = rng.random((2, 3, 4, 4))
        out = flat.forward(x, training=True)
        assert out.shape == (2, 48)
        back = flat.backward(out)
        assert back.shape == x.shape
        assert np.allclose(back, x)


class TestDropout:
    def test_inference_identity(self, rng):
        drop = Dropout(0.5)
        x = rng.random((4, 4))
        assert np.array_equal(drop.forward(x, training=False), x)

    def test_training_scales_survivors(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((100, 100))
        out = drop.forward(x, training=True)
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_backward_uses_same_mask(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((10, 10))
        out = drop.forward(x, training=True)
        g = drop.backward(np.ones_like(x))
        assert np.array_equal(g == 0, out == 0)

    def test_rate_validation(self):
        with pytest.raises(TrainingError):
            Dropout(1.0)
