"""Variation-aware training."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn import Adam, Dense, ReLU, Sequential
from repro.nn.robust import VariationAwareTrainer
from repro.nn.train import Trainer


def blobs(rng, n=400, d=8):
    x = np.concatenate([
        rng.normal(0.3, 0.1, (n // 2, d)),
        rng.normal(0.7, 0.1, (n // 2, d)),
    ])
    y = np.concatenate([np.zeros(n // 2, int), np.ones(n // 2, int)])
    return x, y


def noisy_accuracy(model, x, y, sigma, trials=8, seed=0):
    """Accuracy under multiplicative weight noise at inference."""
    rng = np.random.default_rng(seed)
    accs = []
    params = model.parameters()
    for _ in range(trials):
        saved = [(p, p.value.copy()) for p in params]
        for p in params:
            p.value *= rng.normal(1.0, sigma, p.value.shape)
        accs.append(float(np.mean(model.predict(x) == y)))
        for p, original in saved:
            p.value[...] = original
    return float(np.mean(accs))


class TestVariationAwareTrainer:
    def test_learns_task(self, rng):
        x, y = blobs(rng)
        model = Sequential([Dense(8, 16), ReLU(), Dense(16, 2)])
        trainer = VariationAwareTrainer(
            model, Adam(model.parameters(), lr=2e-3),
            weight_noise_sigma=0.15, batch_size=32,
        )
        history = trainer.fit(x, y, epochs=15)
        assert history.train_accuracy[-1] > 0.9

    def test_weights_restored_after_epoch(self, rng):
        """Perturbations must never leak into the stored weights beyond
        the optimiser's own update."""
        class NullOptimizer:
            def __init__(self, params):
                self.params = list(params)

            def zero_grad(self):
                for p in self.params:
                    p.zero_grad()

            def step(self):
                pass  # no update: any weight change would be a leak

        x, y = blobs(rng, n=64)
        model = Sequential([Dense(8, 2)])
        trainer = VariationAwareTrainer(
            model, NullOptimizer(model.parameters()),
            weight_noise_sigma=0.5, batch_size=64,
        )
        before = model.layers[0].weight.value.copy()
        trainer.train_epoch(x, y)
        # lr=0 -> the only possible change would be a perturbation leak.
        assert np.allclose(model.layers[0].weight.value, before)

    def test_improves_noise_robustness(self, rng):
        """The headline property: noisy-trained nets tolerate inference
        weight noise better than plainly trained ones."""
        x, y = blobs(rng, n=600)
        x_test, y_test = blobs(np.random.default_rng(99), n=200)

        def build():
            return Sequential([
                Dense(8, 24, rng=np.random.default_rng(5)), ReLU(),
                Dense(24, 2, rng=np.random.default_rng(6)),
            ])

        plain = build()
        Trainer(plain, Adam(plain.parameters(), lr=2e-3),
                batch_size=32, rng=np.random.default_rng(1)).fit(x, y, epochs=20)
        robust = build()
        VariationAwareTrainer(
            robust, Adam(robust.parameters(), lr=2e-3),
            weight_noise_sigma=0.3, batch_size=32,
            rng=np.random.default_rng(1),
        ).fit(x, y, epochs=20)

        sigma = 0.6  # strong inference noise separates the two regimes
        acc_plain = noisy_accuracy(plain, x_test, y_test, sigma)
        acc_robust = noisy_accuracy(robust, x_test, y_test, sigma)
        assert acc_robust >= acc_plain - 0.01

    def test_zero_sigma_equals_plain_trainer(self, rng):
        x, y = blobs(rng, n=128)
        a = Sequential([Dense(8, 2, rng=np.random.default_rng(3))])
        b = Sequential([Dense(8, 2, rng=np.random.default_rng(3))])
        Trainer(a, Adam(a.parameters(), lr=1e-3),
                rng=np.random.default_rng(0)).fit(x, y, epochs=2)
        VariationAwareTrainer(
            b, Adam(b.parameters(), lr=1e-3), weight_noise_sigma=0.0,
            rng=np.random.default_rng(0),
        ).fit(x, y, epochs=2)
        assert np.allclose(a.layers[0].weight.value, b.layers[0].weight.value)

    def test_validation(self, rng):
        model = Sequential([Dense(4, 2)])
        with pytest.raises(TrainingError):
            VariationAwareTrainer(
                model, Adam(model.parameters()), weight_noise_sigma=-0.1
            )
