"""Losses, optimisers, Sequential, Trainer, quantise helpers."""

import os

import numpy as np
import pytest

from repro.errors import ArtifactError, ShapeError, TrainingError
from repro.nn import (
    SGD,
    Adam,
    CrossEntropyLoss,
    Dense,
    MSELoss,
    ReLU,
    Sequential,
    Trainer,
    evaluate_accuracy,
)
from repro.nn.losses import softmax
from repro.nn.quantize import normalise_signed, per_layer_scales, quantize_uniform
from repro.errors import MappingError


class TestLosses:
    def test_softmax_rows_sum_to_one(self, rng):
        p = softmax(rng.normal(size=(5, 10)))
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_softmax_stable_for_large_logits(self):
        p = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(p).all()

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0]])
        loss, _ = CrossEntropyLoss()(logits, np.array([0]))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_gradient_numeric(self, rng):
        logits = rng.normal(size=(3, 4))
        labels = np.array([0, 2, 1])
        loss_fn = CrossEntropyLoss()
        _, grad = loss_fn(logits.copy(), labels)
        eps = 1e-6
        i, j = 1, 2
        up = logits.copy(); up[i, j] += eps
        down = logits.copy(); down[i, j] -= eps
        numeric = (loss_fn(up, labels)[0] - loss_fn(down, labels)[0]) / (2 * eps)
        assert grad[i, j] == pytest.approx(numeric, abs=1e-5)

    def test_cross_entropy_label_validation(self):
        with pytest.raises(TrainingError):
            CrossEntropyLoss()(np.zeros((2, 3)), np.array([0, 5]))

    def test_mse(self):
        loss, grad = MSELoss()(np.array([1.0, 2.0]), np.array([0.0, 2.0]))
        assert loss == pytest.approx(0.5)
        assert np.allclose(grad, [1.0, 0.0])


class TestOptimisers:
    def _quadratic_param(self):
        from repro.nn.layers import Parameter

        return Parameter("x", np.array([5.0, -3.0]))

    def test_sgd_converges_on_quadratic(self):
        p = self._quadratic_param()
        opt = SGD([p], lr=0.1, momentum=0.0)
        for _ in range(200):
            opt.zero_grad()
            p.grad += 2 * p.value
            opt.step()
        assert np.allclose(p.value, 0.0, atol=1e-6)

    def test_momentum_faster_than_plain(self):
        def run(momentum):
            p = self._quadratic_param()
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                p.grad += 2 * p.value
                opt.step()
            return float(np.abs(p.value).sum())

        assert run(0.9) < run(0.0)

    def test_adam_converges(self):
        p = self._quadratic_param()
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            p.grad += 2 * p.value
            opt.step()
        assert np.allclose(p.value, 0.0, atol=1e-3)

    def test_weight_decay_shrinks(self):
        p = self._quadratic_param()
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=1.0)
        opt.zero_grad()
        opt.step()  # zero gradient, decay only
        assert np.all(np.abs(p.value) < np.array([5.0, 3.0]))

    def test_validation(self):
        with pytest.raises(TrainingError):
            SGD([], lr=0.0)
        with pytest.raises(TrainingError):
            Adam([], lr=1e-3, betas=(1.0, 0.9))


class TestSequential:
    def test_forward_composition(self, rng):
        model = Sequential([Dense(4, 8), ReLU(), Dense(8, 2)])
        out = model(rng.random((3, 4)))
        assert out.shape == (3, 2)

    def test_parameter_count(self):
        model = Sequential([Dense(4, 8), ReLU(), Dense(8, 2)])
        assert model.parameter_count() == 4 * 8 + 8 + 8 * 2 + 2

    def test_save_load_round_trip(self, rng, tmp_path):
        model = Sequential([Dense(4, 3)], name="m")
        x = rng.random((2, 4))
        expected = model(x)
        path = str(tmp_path / "weights.npz")
        model.save(path)
        fresh = Sequential([Dense(4, 3)], name="m")
        fresh.load(path)
        assert np.allclose(fresh(x), expected)

    def test_load_rejects_wrong_shapes(self, tmp_path):
        model = Sequential([Dense(4, 3)])
        path = str(tmp_path / "w.npz")
        model.save(path)
        other = Sequential([Dense(4, 5)])
        with pytest.raises(ShapeError):
            other.load(path)

    def test_load_corrupt_archive_raises_artifact_error(self, tmp_path):
        path = str(tmp_path / "w.npz")
        with open(path, "wb") as fh:
            fh.write(b"PK\x03\x04 truncated, not a real archive")
        with pytest.raises(ArtifactError):
            Sequential([Dense(4, 3)]).load(path)

    def test_load_missing_file_raises_artifact_error(self, tmp_path):
        with pytest.raises(ArtifactError):
            Sequential([Dense(4, 3)]).load(str(tmp_path / "absent.npz"))

    def test_save_is_atomic_no_temp_litter(self, tmp_path):
        model = Sequential([Dense(4, 3)])
        path = str(tmp_path / "w.npz")
        model.save(path)
        model.save(path)  # overwrite in place
        assert os.listdir(tmp_path) == ["w.npz"]
        fresh = Sequential([Dense(4, 3)])
        fresh.load(path)  # still a readable archive

    def test_predict_batched_matches_full(self, rng):
        model = Sequential([Dense(4, 3)])
        x = rng.random((10, 4))
        assert np.array_equal(model.predict(x), model.predict(x, batch_size=3))

    def test_empty_model_rejected(self):
        with pytest.raises(ShapeError):
            Sequential([])


class TestTrainer:
    def _toy_problem(self, rng, n=400):
        """Two Gaussian blobs, linearly separable."""
        x = np.concatenate([
            rng.normal(0.25, 0.08, (n // 2, 4)),
            rng.normal(0.75, 0.08, (n // 2, 4)),
        ])
        y = np.concatenate([np.zeros(n // 2, int), np.ones(n // 2, int)])
        return x, y

    def test_learns_separable_problem(self, rng):
        x, y = self._toy_problem(rng)
        model = Sequential([Dense(4, 2)])
        trainer = Trainer(model, SGD(model.parameters(), lr=0.5), batch_size=32)
        history = trainer.fit(x, y, epochs=10)
        assert history.train_accuracy[-1] > 0.95

    def test_history_tracks_validation(self, rng):
        x, y = self._toy_problem(rng)
        model = Sequential([Dense(4, 2)])
        trainer = Trainer(model, SGD(model.parameters(), lr=0.5))
        history = trainer.fit(x, y, epochs=3, x_val=x, labels_val=y)
        assert len(history.val_accuracy) == 3
        assert history.final_val_accuracy == history.val_accuracy[-1]

    def test_evaluate_accuracy(self, rng):
        x, y = self._toy_problem(rng)
        model = Sequential([Dense(4, 2)])
        acc = evaluate_accuracy(model, x, y)
        assert 0.0 <= acc <= 1.0

    def test_validation(self, rng):
        model = Sequential([Dense(4, 2)])
        with pytest.raises(TrainingError):
            Trainer(model, SGD(model.parameters()), batch_size=0)
        trainer = Trainer(model, SGD(model.parameters()))
        with pytest.raises(TrainingError):
            trainer.fit(rng.random((4, 4)), np.zeros(4, int), epochs=0)


class TestQuantise:
    def test_quantize_uniform(self):
        out = quantize_uniform(np.array([0.0, 0.49, 1.0]), bits=1, v_min=0.0, v_max=1.0)
        assert np.allclose(out, [0.0, 0.0, 1.0])

    def test_quantize_clips(self):
        out = quantize_uniform(np.array([-5.0, 5.0]), bits=4, v_min=0.0, v_max=1.0)
        assert np.allclose(out, [0.0, 1.0])

    def test_quantize_validation(self):
        with pytest.raises(MappingError):
            quantize_uniform(np.zeros(2), bits=0, v_min=0, v_max=1)
        with pytest.raises(MappingError):
            quantize_uniform(np.zeros(2), bits=4, v_min=1, v_max=1)

    def test_normalise_signed(self, rng):
        w = rng.normal(size=(4, 4))
        normalised, scale = normalise_signed(w)
        assert np.abs(normalised).max() == pytest.approx(1.0)
        assert np.allclose(normalised * scale, w)

    def test_normalise_zero_matrix(self):
        normalised, scale = normalise_signed(np.zeros((2, 2)))
        assert scale == pytest.approx(1.0)
        assert np.all(normalised == 0)

    def test_per_layer_scales(self, rng):
        model = Sequential([Dense(4, 8), ReLU(), Dense(8, 2)])
        scales = per_layer_scales(model)
        assert len(scales) == 2
        for layer in (model.layers[0], model.layers[2]):
            assert scales[layer.name] == pytest.approx(
                float(np.abs(layer.weight.value).max())
            )
