"""1T1R cell, IR-drop solver and write-verify programming."""

import numpy as np
import pytest

from repro.errors import DeviceError, ShapeError
from repro.reram.cell import OneTransistorOneReRAM
from repro.reram.crossbar import CrossbarArray
from repro.reram.device import DeviceSpec, ReRAMDevice
from repro.reram.nonideal import IRDropSolver, WireParasitics
from repro.reram.programming import WriteVerifyProgrammer


class TestCell:
    def test_effective_conductance_includes_access(self):
        spec = DeviceSpec.paper_linear_range()
        cell = OneTransistorOneReRAM(ReRAMDevice(spec, initial_g=1e-5), r_on=1e3)
        assert cell.effective_resistance == pytest.approx(1e5 + 1e3)

    def test_deselected_leaks(self):
        spec = DeviceSpec.paper_linear_range()
        cell = OneTransistorOneReRAM.fresh(spec)
        cell.deselect()
        assert cell.effective_conductance == pytest.approx(cell.g_leak)
        cell.select()
        assert cell.effective_conductance > cell.g_leak

    def test_program_effective_compensates_access(self):
        spec = DeviceSpec.paper_full_range()
        cell = OneTransistorOneReRAM.fresh(spec, r_on=5e3)
        cell.program_effective(1e-5)  # 100 kOhm effective
        assert cell.effective_conductance == pytest.approx(1e-5, rel=1e-9)

    def test_unreachable_target(self):
        spec = DeviceSpec.paper_linear_range()
        cell = OneTransistorOneReRAM.fresh(spec, r_on=5e3)
        with pytest.raises(DeviceError):
            cell.target_device_conductance(1.0 / 4e3)

    def test_validation(self):
        spec = DeviceSpec.paper_linear_range()
        with pytest.raises(DeviceError):
            OneTransistorOneReRAM(ReRAMDevice(spec), r_on=-1.0)


class TestIRDrop:
    def test_ideal_parasitics_match_matmul(self, rng):
        xb = CrossbarArray(6, 6)
        xb.program_normalised(rng.random((6, 6)))
        v = rng.random(6)
        solver = IRDropSolver(xb, WireParasitics.ideal())
        assert np.allclose(
            solver.solve_currents(v), xb.mvm_currents(v), rtol=1e-6
        )

    def test_wire_resistance_reduces_current(self, rng):
        xb = CrossbarArray(8, 8)
        xb.program_normalised(np.ones((8, 8)))  # worst case: all LRS
        v = np.ones(8)
        heavy = IRDropSolver(xb, WireParasitics(r_wire_wl=50.0, r_wire_bl=50.0))
        currents = heavy.solve_currents(v)
        ideal = xb.mvm_currents(v)
        assert np.all(currents < ideal)

    def test_error_grows_with_wire_resistance(self, rng):
        xb = CrossbarArray(8, 8)
        xb.program_normalised(rng.random((8, 8)))
        v = rng.random(8)
        _, small = IRDropSolver(xb, WireParasitics(1.0, 1.0)).error_vs_ideal(v)
        _, large = IRDropSolver(xb, WireParasitics(25.0, 25.0)).error_vs_ideal(v)
        assert large > small

    def test_shape_checked(self, rng):
        xb = CrossbarArray(4, 4)
        solver = IRDropSolver(xb, WireParasitics())
        with pytest.raises(ShapeError):
            solver.solve_currents(np.zeros(5))

    def test_parasitics_validation(self):
        with pytest.raises(DeviceError):
            WireParasitics(r_wire_wl=-1.0)
        with pytest.raises(DeviceError):
            WireParasitics(r_sense=0.0)


class TestWriteVerify:
    def test_converges(self, rng):
        spec = DeviceSpec.paper_linear_range()
        xb = CrossbarArray(8, 8, spec)
        target = spec.g_min + rng.random((8, 8)) * spec.g_range
        report = WriteVerifyProgrammer(tolerance=0.02).program(xb, target, rng)
        assert report.converged_fraction == pytest.approx(1.0)
        assert report.max_relative_error <= 0.02 * 1.001
        assert np.allclose(xb.conductances, target, rtol=0.025)

    def test_tighter_tolerance_needs_more_pulses(self, rng):
        spec = DeviceSpec.paper_linear_range()
        target = spec.g_min + rng.random((8, 8)) * spec.g_range
        loose_xb = CrossbarArray(8, 8, spec)
        tight_xb = CrossbarArray(8, 8, spec)
        loose = WriteVerifyProgrammer(tolerance=0.10).program(
            loose_xb, target, np.random.default_rng(0)
        )
        tight = WriteVerifyProgrammer(tolerance=0.005).program(
            tight_xb, target, np.random.default_rng(0)
        )
        assert tight.total_pulses > loose.total_pulses

    def test_energy_positive(self, rng):
        spec = DeviceSpec.paper_linear_range()
        xb = CrossbarArray(4, 4, spec)
        target = np.full((4, 4), 0.5 * (spec.g_min + spec.g_max))
        report = WriteVerifyProgrammer().program(xb, target, rng)
        assert report.programming_energy > 0

    def test_shape_checked(self, rng):
        xb = CrossbarArray(4, 4)
        with pytest.raises(ShapeError):
            WriteVerifyProgrammer().program(xb, np.zeros((3, 3)), rng)

    def test_validation(self):
        with pytest.raises(DeviceError):
            WriteVerifyProgrammer(tolerance=0.0)
        with pytest.raises(DeviceError):
            WriteVerifyProgrammer(max_iterations=0)
        with pytest.raises(DeviceError):
            WriteVerifyProgrammer(step_gain=2.0)
