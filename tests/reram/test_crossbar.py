"""Crossbar array model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import DeviceError, ShapeError
from repro.reram.crossbar import CrossbarArray
from repro.reram.device import DeviceSpec
from repro.reram.variation import StuckAtFaultModel, VariationModel


@pytest.fixture
def programmed(rng):
    xb = CrossbarArray(8, 6)
    xb.program_normalised(rng.random((8, 6)))
    return xb


class TestProgramming:
    def test_fresh_array_at_hrs(self):
        xb = CrossbarArray(4, 4)
        assert np.allclose(xb.conductances, xb.spec.g_min)

    def test_program_quantises_into_window(self, rng):
        xb = CrossbarArray(4, 4)
        xb.program(np.full((4, 4), 1.0))  # way above g_max
        assert np.allclose(xb.conductances, xb.spec.g_max)

    def test_program_normalised(self):
        xb = CrossbarArray(2, 2)
        xb.program_normalised(np.array([[0.0, 1.0], [0.5, 0.25]]))
        g = xb.conductances
        assert g[0, 0] == pytest.approx(xb.spec.g_min)
        assert g[0, 1] == pytest.approx(xb.spec.g_max)

    def test_write_count(self, programmed):
        assert programmed.write_count == 1

    def test_shape_checked(self):
        xb = CrossbarArray(4, 4)
        with pytest.raises(ShapeError):
            xb.program(np.zeros((3, 4)))

    def test_negative_rejected(self):
        xb = CrossbarArray(2, 2)
        with pytest.raises(DeviceError):
            xb.program(np.full((2, 2), -1e-6))

    def test_conductances_read_only(self, programmed):
        with pytest.raises(ValueError):
            programmed.conductances[0, 0] = 1.0

    def test_bad_dimensions(self):
        with pytest.raises(DeviceError):
            CrossbarArray(0, 4)


class TestMVM:
    def test_matches_matmul(self, programmed, rng):
        v = rng.random(8)
        assert np.allclose(programmed.mvm_currents(v), v @ programmed.conductances)

    def test_batched(self, programmed, rng):
        v = rng.random((5, 8))
        out = programmed.mvm_currents(v)
        assert out.shape == (5, 6)
        assert np.allclose(out, v @ programmed.conductances)

    def test_shape_checked(self, programmed):
        with pytest.raises(ShapeError):
            programmed.mvm_currents(np.zeros(7))

    @given(
        v=hnp.arrays(np.float64, (8,), elements=st.floats(0, 1)),
    )
    @settings(max_examples=30, deadline=None)
    def test_linearity_property(self, v):
        """MVM is linear: f(2v) = 2 f(v)."""
        xb = CrossbarArray(8, 4)
        xb.program_normalised(np.linspace(0, 1, 32).reshape(8, 4))
        assert np.allclose(xb.mvm_currents(2 * v), 2 * xb.mvm_currents(v))


class TestColumnAnalysis:
    def test_total_conductance(self, programmed):
        assert np.allclose(
            programmed.column_total_conductance(), programmed.conductances.sum(axis=0)
        )

    def test_thevenin_matches_eq2(self, programmed, rng):
        v = rng.random(8)
        v_eq, r_eq = programmed.column_thevenin(v)
        g = programmed.conductances
        assert np.allclose(v_eq, (v @ g) / g.sum(axis=0))
        assert np.allclose(r_eq, 1.0 / g.sum(axis=0))

    def test_thevenin_voltage_bounded(self, programmed, rng):
        v = rng.random(8)
        v_eq, _ = programmed.column_thevenin(v)
        assert np.all(v_eq <= v.max() + 1e-12)
        assert np.all(v_eq >= v.min() - 1e-12)

    def test_linear_limit_mask(self):
        xb = CrossbarArray(32, 2, spec=DeviceSpec.paper_full_range())
        targets = np.full((32, 2), xb.spec.g_min)
        targets[:, 1] = xb.spec.g_max  # 32 x 0.1 mS = 3.2 mS
        xb.program(targets)
        mask = xb.exceeds_linear_limit(1.6e-3)
        assert not mask[0]
        assert mask[1]

    def test_compute_power(self, programmed, rng):
        v = rng.random(8)
        expected = float((v**2) @ programmed.conductances.sum(axis=1))
        assert programmed.compute_power(v) == pytest.approx(expected)


class TestPerturb:
    def test_original_untouched(self, programmed, rng):
        before = programmed.conductances.copy()
        programmed.perturb(rng, variation=VariationModel(sigma=0.2))
        assert np.array_equal(programmed.conductances, before)

    def test_clone_differs(self, programmed, rng):
        clone = programmed.perturb(rng, variation=VariationModel(sigma=0.2))
        assert not np.array_equal(clone.conductances, programmed.conductances)

    def test_faults_applied(self, programmed, rng):
        clone = programmed.perturb(
            rng, faults=StuckAtFaultModel(stuck_on_rate=1.0)
        )
        assert np.allclose(clone.conductances, programmed.spec.g_max)

    def test_noop_clone_equal(self, programmed, rng):
        clone = programmed.perturb(rng)
        assert np.array_equal(clone.conductances, programmed.conductances)
