"""ReRAM device model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeviceError
from repro.reram.device import DeviceSpec, ReRAMDevice


class TestDeviceSpec:
    def test_paper_windows(self):
        full = DeviceSpec.paper_full_range()
        assert full.r_lrs == pytest.approx(10e3)
        assert full.dynamic_range == pytest.approx(100.0)
        linear = DeviceSpec.paper_linear_range()
        assert linear.r_lrs == pytest.approx(50e3)
        assert linear.dynamic_range == pytest.approx(20.0)

    def test_linear_window_respects_column_bound(self):
        # 32 cells all at LRS stay within the paper's 1.6 mS budget.
        spec = DeviceSpec.paper_linear_range()
        assert 32 * spec.g_max <= 1.6e-3 + 1e-12

    def test_clip(self):
        spec = DeviceSpec.paper_linear_range()
        assert spec.clip(1.0) == pytest.approx(spec.g_max)
        assert spec.clip(0.0) == pytest.approx(spec.g_min)

    def test_contains(self):
        spec = DeviceSpec.paper_linear_range()
        assert spec.contains(spec.g_min)
        assert spec.contains(spec.g_max)
        assert not spec.contains(2 * spec.g_max)

    def test_quantise_continuous_is_clip(self):
        spec = DeviceSpec.paper_linear_range()
        g = spec.g_min + 0.123456 * spec.g_range
        assert spec.quantise(g) == pytest.approx(g)

    def test_quantise_levels(self):
        spec = DeviceSpec(levels=5)
        step = spec.g_range / 4
        g = spec.g_min + 1.4 * step
        assert spec.quantise(g) == pytest.approx(spec.g_min + step)

    def test_quantise_idempotent(self, rng):
        spec = DeviceSpec(levels=16)
        g = rng.uniform(spec.g_min, spec.g_max, 100)
        once = spec.quantise(g)
        assert np.allclose(spec.quantise(once), once)

    @given(w=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_normalised_round_trip(self, w):
        spec = DeviceSpec.paper_linear_range()
        g = spec.normalised_to_conductance(w)
        assert spec.conductance_to_normalised(g) == pytest.approx(w, abs=1e-12)

    def test_normalised_rejects_out_of_range(self):
        spec = DeviceSpec.paper_linear_range()
        with pytest.raises(DeviceError):
            spec.normalised_to_conductance(1.5)
        with pytest.raises(DeviceError):
            spec.conductance_to_normalised(spec.g_max * 2)

    def test_validation(self):
        with pytest.raises(DeviceError):
            DeviceSpec(r_lrs=1e6, r_hrs=1e6)
        with pytest.raises(DeviceError):
            DeviceSpec(levels=1)
        with pytest.raises(DeviceError):
            DeviceSpec(write_voltage=0.0)


class TestReRAMDevice:
    def test_fresh_at_hrs(self):
        spec = DeviceSpec.paper_linear_range()
        dev = ReRAMDevice(spec)
        assert dev.conductance == pytest.approx(spec.g_min)
        assert dev.resistance == pytest.approx(spec.r_hrs)

    def test_program_and_count(self):
        spec = DeviceSpec.paper_linear_range()
        dev = ReRAMDevice(spec)
        dev.program(spec.g_max)
        assert dev.conductance == pytest.approx(spec.g_max)
        assert dev.write_count == 1

    def test_program_clips_to_window(self):
        spec = DeviceSpec.paper_linear_range()
        dev = ReRAMDevice(spec)
        dev.program(spec.g_max * 10)
        assert dev.conductance == pytest.approx(spec.g_max)

    def test_nudge(self):
        spec = DeviceSpec.paper_linear_range()
        dev = ReRAMDevice(spec, initial_g=spec.g_min)
        dev.nudge(1e-6)
        assert dev.conductance == pytest.approx(spec.g_min + 1e-6)

    def test_read_current_ohmic(self):
        spec = DeviceSpec.paper_linear_range()
        dev = ReRAMDevice(spec, initial_g=2e-5)
        assert dev.read_current(0.5) == pytest.approx(1e-5)

    def test_write_energy_positive(self):
        dev = ReRAMDevice(DeviceSpec.paper_linear_range())
        assert dev.write_energy() > 0

    def test_rejects_bad_initial(self):
        spec = DeviceSpec.paper_linear_range()
        with pytest.raises(DeviceError):
            ReRAMDevice(spec, initial_g=spec.g_max * 2)
