"""Endurance (write-cycling) model."""

import pytest

from repro.errors import DeviceError
from repro.reram.device import DeviceSpec
from repro.reram.endurance import EnduranceModel


@pytest.fixture
def spec():
    return DeviceSpec.paper_linear_range()


class TestClosure:
    def test_fresh_window_intact(self, spec):
        model = EnduranceModel()
        degraded = model.degraded_spec(spec, 0)
        assert degraded.g_max == pytest.approx(spec.g_max)
        assert degraded.g_min == pytest.approx(spec.g_min)

    def test_window_shrinks_monotonically(self, spec):
        model = EnduranceModel(endurance_cycles=1e6)
        ranges = [
            model.remaining_dynamic_range(spec, n)
            for n in (0, 1e4, 1e5, 5e5, 9e5)
        ]
        assert ranges == sorted(ranges, reverse=True)

    def test_closure_fraction_saturates(self):
        model = EnduranceModel(endurance_cycles=100)
        assert model.closure_fraction(1_000_000) == pytest.approx(1.0)

    def test_beta_accelerates_late_life(self, spec):
        half = 0.5e7
        gentle = EnduranceModel(beta=1.0).closure_fraction(half)
        steep = EnduranceModel(beta=2.0).closure_fraction(half)
        assert steep < gentle  # steeper beta is healthier at mid-life

    def test_collapse_raises(self, spec):
        model = EnduranceModel(endurance_cycles=100)
        with pytest.raises(DeviceError):
            model.degraded_spec(spec, 100)

    def test_midpoint_preserved(self, spec):
        model = EnduranceModel()
        degraded = model.degraded_spec(spec, 0.6 * model.endurance_cycles)
        mid0 = 0.5 * (spec.g_min + spec.g_max)
        mid1 = 0.5 * (degraded.g_min + degraded.g_max)
        assert mid1 == pytest.approx(mid0)

    def test_degraded_spec_deterministic(self, spec):
        """The closure law is analytic — identical inputs must yield an
        identical degraded window (campaign records rely on this)."""
        model = EnduranceModel(endurance_cycles=1e6, beta=1.5)
        a = model.degraded_spec(spec, 3e5)
        b = model.degraded_spec(spec, 3e5)
        assert a.g_min == b.g_min and a.g_max == b.g_max

    def test_validation(self):
        with pytest.raises(DeviceError):
            EnduranceModel(endurance_cycles=0)
        with pytest.raises(DeviceError):
            EnduranceModel(beta=0)
        with pytest.raises(DeviceError):
            EnduranceModel().closure_fraction(-1)


class TestLifetime:
    def test_cycles_to_dynamic_range(self, spec):
        model = EnduranceModel(endurance_cycles=1e6, beta=1.0)
        cycles = model.cycles_to_dynamic_range(spec, target_range=5.0)
        assert 0 < cycles < 1e6
        assert model.remaining_dynamic_range(spec, cycles) == pytest.approx(
            5.0, rel=0.05
        )

    def test_already_below_target(self, spec):
        model = EnduranceModel()
        assert model.cycles_to_dynamic_range(spec, spec.dynamic_range + 1) == pytest.approx(0.0)

    def test_inference_only_use_is_safe(self, spec):
        """The paper's inference-only deployment writes each cell only
        during (re)programming: thousands of write-verify pulses are
        harmless against a 10^7 endurance."""
        model = EnduranceModel()
        degraded = model.degraded_spec(spec, 5_000)
        assert degraded.dynamic_range > 0.99 * spec.dynamic_range

    def test_validation(self, spec):
        with pytest.raises(DeviceError):
            EnduranceModel().cycles_to_dynamic_range(spec, 0.5)
