"""Vectorized MNA assembly regression vs quadruple-loop stamping.

The IR-drop solver assembles its MNA matrix with numpy index arithmetic
(:meth:`IRDropSolver._stamps`).  These tests rebuild the same matrix the
slow way — one Python loop iteration per wordline segment, bitline
segment and cell — and check the two agree, then verify the solved
currents against a netlist built with the original :class:`DCCircuit`
loops, plus the LU-cache bookkeeping.
"""

import numpy as np
import pytest

from repro.circuits.mna import DCCircuit
from repro.reram.crossbar import CrossbarArray
from repro.reram.nonideal import IRDropSolver, WireParasitics


def _loop_built_matrix(solver, sense_resistance, wire_floor):
    """Dense MNA matrix via nested stamp loops (the pre-vectorized
    assembly), using the solver's documented node numbering."""
    rows, cols = solver.array.shape
    g = solver.array.conductances
    p = solver.parasitics
    n = 2 * rows * cols
    matrix = np.zeros((n + rows, n + rows))

    def wl(i, j):
        return i * cols + j

    def bl(i, j):
        return rows * cols + i * cols + j

    def stamp(a, b, conductance):
        matrix[a, a] += conductance
        matrix[b, b] += conductance
        matrix[a, b] -= conductance
        matrix[b, a] -= conductance

    for i in range(rows):
        for j in range(cols - 1):
            stamp(wl(i, j), wl(i, j + 1), 1.0 / max(p.r_wire_wl, wire_floor))
    for j in range(cols):
        for i in range(rows - 1):
            stamp(bl(i, j), bl(i + 1, j), 1.0 / max(p.r_wire_bl, wire_floor))
        if sense_resistance is not None:
            matrix[bl(rows - 1, j), bl(rows - 1, j)] += 1.0 / sense_resistance
    for i in range(rows):
        for j in range(cols):
            if g[i, j] > 0:
                stamp(wl(i, j), bl(i, j), g[i, j])
    for i in range(rows):
        matrix[wl(i, 0), n + i] = 1.0
        matrix[n + i, wl(i, 0)] = 1.0
    return matrix


def _programmed(rng, rows=16, cols=16):
    xb = CrossbarArray(rows, cols)
    xb.program_normalised(rng.random((rows, cols)))
    return xb


class TestVectorizedAssembly:
    @pytest.mark.parametrize("sense_resistance,wire_floor",
                             [(1.0, 1e-12), (1e9, 1e-3), (None, 1e-3)])
    def test_matches_loop_built_matrix(self, rng, sense_resistance,
                                       wire_floor):
        solver = IRDropSolver(_programmed(rng), WireParasitics())
        i_idx, j_idx, vals, size, _ = solver._stamps(
            sense_resistance, wire_floor
        )
        vectorized = np.zeros((size, size))
        np.add.at(vectorized, (i_idx, j_idx), vals)
        reference = _loop_built_matrix(solver, sense_resistance, wire_floor)
        assert vectorized.shape == reference.shape
        assert np.allclose(vectorized, reference, rtol=1e-12, atol=0.0)

    def test_zero_conductance_cells_not_stamped(self, rng):
        xb = _programmed(rng, 4, 4)
        xb._g[1, 2] = 0.0  # bypass quantisation to force an open cell
        solver = IRDropSolver(xb, WireParasitics())
        i_idx, j_idx, vals, size, _ = solver._stamps(1.0, 1e-12)
        vectorized = np.zeros((size, size))
        np.add.at(vectorized, (i_idx, j_idx), vals)
        reference = _loop_built_matrix(solver, 1.0, 1e-12)
        assert np.allclose(vectorized, reference, rtol=1e-12, atol=0.0)

    def test_currents_match_netlist_solver(self, rng):
        """End-to-end: cached-LU currents vs a DCCircuit netlist built
        with the original per-component loops."""
        xb = _programmed(rng)
        rows, cols = xb.shape
        p = WireParasitics(r_wire_wl=5.0, r_wire_bl=5.0)
        v = rng.random(rows)

        circuit = DCCircuit()
        for i in range(rows):
            circuit.add_voltage_source(f"wl_{i}_0", float(v[i]))
            for j in range(cols - 1):
                circuit.add_resistor(f"wl_{i}_{j}", f"wl_{i}_{j + 1}",
                                     p.r_wire_wl)
        for j in range(cols):
            for i in range(rows - 1):
                circuit.add_resistor(f"bl_{i}_{j}", f"bl_{i + 1}_{j}",
                                     p.r_wire_bl)
            circuit.add_resistor(f"bl_{rows - 1}_{j}", "gnd", p.r_sense)
        g = xb.conductances
        for i in range(rows):
            for j in range(cols):
                if g[i, j] > 0:
                    circuit.add_resistor(f"wl_{i}_{j}", f"bl_{i}_{j}",
                                         1.0 / g[i, j])
        solution = circuit.solve()
        reference = np.array([
            solution.voltage(f"bl_{rows - 1}_{j}") / p.r_sense
            for j in range(cols)
        ])

        solver = IRDropSolver(xb, p)
        assert np.allclose(solver.solve_currents(v), reference,
                           rtol=1e-9, atol=1e-12)

    def test_lu_cache_reused_across_drives(self, rng):
        solver = IRDropSolver(_programmed(rng, 8, 8), WireParasitics())
        first = solver.solve_currents(rng.random(8))
        assert len(solver._factor_cache) == 1
        solver.solve_currents(rng.random(8))
        assert len(solver._factor_cache) == 1
        # Same drive, warm cache: identical answer.
        v = rng.random(8)
        assert np.array_equal(solver.solve_currents(v),
                              solver.solve_currents(v))
        assert first.shape == (8,)

    def test_lu_cache_invalidated_by_reprogram(self, rng):
        xb = _programmed(rng, 6, 6)
        solver = IRDropSolver(xb, WireParasitics(10.0, 10.0))
        before = solver.solve_currents(np.ones(6))
        xb.program_normalised(rng.random((6, 6)))
        after = solver.solve_currents(np.ones(6))
        assert len(solver._factor_cache) == 2
        assert not np.allclose(before, after)
