"""Parasitic-aware column Thevenin extraction and the IR-aware MVM."""

import numpy as np
import pytest

from repro.config import CircuitParameters
from repro.core.mvm import MVMMode, SingleSpikeMVM
from repro.errors import ShapeError
from repro.reram.crossbar import CrossbarArray
from repro.reram.nonideal import IRDropSolver, ParasiticThevenin, WireParasitics


@pytest.fixture(scope="module")
def programmed():
    rng = np.random.default_rng(0)
    xb = CrossbarArray(8, 6)
    xb.program_normalised(rng.random((8, 6)))
    return xb


class TestTheveninExtraction:
    def test_ideal_wires_match_analytic(self, programmed):
        """With vanishing wire resistance the extracted equivalents
        collapse to the textbook Eq. 2 values."""
        solver = IRDropSolver(programmed, WireParasitics.ideal())
        thevenin = solver.column_thevenin()
        rng = np.random.default_rng(1)
        v = rng.random(8)
        v_eq_ideal, r_eq_ideal = programmed.column_thevenin(v)
        assert np.allclose(thevenin.v_eq(v), v_eq_ideal, rtol=1e-4)
        assert np.allclose(thevenin.r_eq, r_eq_ideal, rtol=1e-4)

    def test_wire_resistance_raises_r_eq(self, programmed):
        ideal = IRDropSolver(programmed, WireParasitics.ideal()).column_thevenin()
        heavy = IRDropSolver(
            programmed, WireParasitics(r_wire_wl=25.0, r_wire_bl=25.0)
        ).column_thevenin()
        assert np.all(heavy.r_eq > ideal.r_eq)

    def test_wire_resistance_lowers_v_eq(self, programmed):
        rng = np.random.default_rng(2)
        v = rng.random(8)
        ideal = IRDropSolver(programmed, WireParasitics.ideal()).column_thevenin()
        heavy = IRDropSolver(
            programmed, WireParasitics(r_wire_wl=25.0, r_wire_bl=25.0)
        ).column_thevenin()
        assert np.all(heavy.v_eq(v) <= ideal.v_eq(v) + 1e-12)

    def test_linearity_of_response(self, programmed):
        thevenin = IRDropSolver(programmed, WireParasitics()).column_thevenin()
        rng = np.random.default_rng(3)
        a, b = rng.random(8), rng.random(8)
        assert np.allclose(
            thevenin.v_eq(a + b), thevenin.v_eq(a) + thevenin.v_eq(b), atol=1e-9
        )

    def test_batch_api(self, programmed):
        thevenin = IRDropSolver(programmed, WireParasitics()).column_thevenin()
        rng = np.random.default_rng(4)
        batch = rng.random((5, 8))
        out = thevenin.v_eq(batch)
        assert out.shape == (5, 6)
        assert np.allclose(out[0], thevenin.v_eq(batch[0]))

    def test_validation(self):
        with pytest.raises(ShapeError):
            ParasiticThevenin(response=np.ones((2, 3)), r_eq=np.ones(3))
        thevenin = ParasiticThevenin(response=np.ones((2, 3)), r_eq=np.ones(2))
        with pytest.raises(ShapeError):
            thevenin.v_eq(np.ones(4))


class TestIRAwareMVM:
    def test_ideal_parasitics_match_plain_exact(self, programmed):
        params = CircuitParameters.calibrated()
        thevenin = IRDropSolver(programmed, WireParasitics.ideal()).column_thevenin()
        plain = SingleSpikeMVM(programmed, params, MVMMode.EXACT)
        aware = SingleSpikeMVM(
            programmed, params, MVMMode.EXACT, parasitic_thevenin=thevenin
        )
        rng = np.random.default_rng(5)
        times = rng.uniform(10e-9, 80e-9, 8)
        assert np.allclose(
            aware.output_times(times), plain.output_times(times), rtol=1e-4
        )

    def test_ir_drop_reduces_outputs(self, programmed):
        params = CircuitParameters.calibrated()
        thevenin = IRDropSolver(
            programmed, WireParasitics(r_wire_wl=25.0, r_wire_bl=25.0)
        ).column_thevenin()
        plain = SingleSpikeMVM(programmed, params, MVMMode.EXACT)
        aware = SingleSpikeMVM(
            programmed, params, MVMMode.EXACT, parasitic_thevenin=thevenin
        )
        rng = np.random.default_rng(6)
        times = rng.uniform(10e-9, 80e-9, 8)
        assert np.all(
            aware.output_times(times) <= plain.output_times(times) + 1e-15
        )
