"""Retention-drift model."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.reram.crossbar import CrossbarArray
from repro.reram.retention import RetentionModel


@pytest.fixture
def programmed(rng):
    xb = CrossbarArray(8, 8)
    xb.program_normalised(rng.random((8, 8)))
    return xb


class TestDecayFactor:
    def test_no_drift_at_t0_zero_elapsed(self):
        model = RetentionModel(nu=0.02)
        assert float(model.decay_factor(0.0)) == pytest.approx(1.0)

    def test_log_time_law(self):
        model = RetentionModel(nu=0.01, t0=1.0)
        one_decade = float(model.decay_factor(9.0))       # log10(10) = 1
        two_decades = float(model.decay_factor(99.0))     # log10(100) = 2
        assert one_decade == pytest.approx(0.99)
        assert two_decades == pytest.approx(0.98)

    def test_monotone_decay(self):
        model = RetentionModel(nu=0.02)
        times = [1.0, 1e2, 1e4, 1e6]
        factors = [float(model.decay_factor(t)) for t in times]
        assert factors == sorted(factors, reverse=True)

    def test_never_negative(self):
        model = RetentionModel(nu=0.5)
        assert float(model.decay_factor(1e30)) == pytest.approx(0.0)

    def test_per_device_spread(self, rng):
        model = RetentionModel(nu=0.05, nu_sigma=0.3)
        factors = model.decay_factor(1e4, shape=(1000,), rng=rng)
        assert factors.std() > 0
        assert np.all(factors <= 1.0)

    def test_validation(self):
        with pytest.raises(DeviceError):
            RetentionModel(nu=1.5)
        with pytest.raises(DeviceError):
            RetentionModel(t0=0.0)
        with pytest.raises(DeviceError):
            RetentionModel().decay_factor(-1.0)


class TestSeededReproducibility:
    def test_decay_factor_reproducible(self):
        model = RetentionModel(nu=0.05, nu_sigma=0.3)
        a = model.decay_factor(1e4, shape=(64,), rng=np.random.default_rng(9))
        b = model.decay_factor(1e4, shape=(64,), rng=np.random.default_rng(9))
        c = model.decay_factor(1e4, shape=(64,), rng=np.random.default_rng(10))
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_age_array_reproducible(self, programmed):
        model = RetentionModel(nu=0.05, nu_sigma=0.3)
        a = model.age_array(programmed, 1e5, np.random.default_rng(9))
        b = model.age_array(programmed, 1e5, np.random.default_rng(9))
        assert np.array_equal(a.conductances, b.conductances)


class TestAgeArray:
    def test_zero_elapsed_is_identity(self, programmed, rng):
        aged = RetentionModel(nu=0.05).age_array(programmed, 0.0, rng)
        assert np.allclose(aged.conductances, programmed.conductances)

    def test_original_untouched(self, programmed, rng):
        before = programmed.conductances.copy()
        RetentionModel(nu=0.05).age_array(programmed, 1e5, rng)
        assert np.array_equal(programmed.conductances, before)

    def test_aged_conductances_lower_or_clipped(self, programmed, rng):
        aged = RetentionModel(nu=0.05).age_array(programmed, 1e5, rng)
        g0 = programmed.conductances
        g1 = aged.conductances
        # Cells already at g_min stay clipped there; others decay.
        assert np.all(g1 <= g0 + 1e-18)
        assert np.all(g1 >= programmed.spec.g_min - 1e-18)

    def test_longer_elapsed_more_decay(self, programmed, rng):
        model = RetentionModel(nu=0.05)
        young = model.age_array(programmed, 1e2)
        old = model.age_array(programmed, 1e6)
        assert old.conductances.sum() < young.conductances.sum()


class TestTimeToDrift:
    def test_inverse_of_decay(self):
        model = RetentionModel(nu=0.01, t0=1.0)
        t = model.time_to_drift(0.02)  # 2 decades
        assert t == pytest.approx(99.0)
        assert float(model.decay_factor(t)) == pytest.approx(0.98)

    def test_zero_nu_never_drifts(self):
        assert RetentionModel(nu=0.0).time_to_drift(0.1) == float("inf")

    def test_validation(self):
        with pytest.raises(DeviceError):
            RetentionModel().time_to_drift(1.5)
