"""Process-variation and fault models."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.reram.device import DeviceSpec
from repro.reram.variation import StuckAtFaultModel, VariationModel, apply_variation


class TestVariationModel:
    def test_zero_sigma_is_identity(self, rng):
        model = VariationModel(sigma=0.0)
        g = rng.uniform(1e-6, 2e-5, (8, 8))
        assert np.array_equal(model.perturb(g, rng), g)

    def test_normal_statistics(self):
        model = VariationModel(sigma=0.1)
        rng = np.random.default_rng(0)
        mult = model.multipliers((200_000,), rng)
        assert mult.mean() == pytest.approx(1.0, abs=5e-3)
        assert mult.std() == pytest.approx(0.1, abs=5e-3)

    def test_lognormal_statistics(self):
        model = VariationModel(sigma=0.2, distribution="lognormal")
        rng = np.random.default_rng(0)
        mult = model.multipliers((200_000,), rng)
        assert mult.mean() == pytest.approx(1.0, abs=5e-3)
        assert mult.std() == pytest.approx(0.2, abs=5e-3)
        assert np.all(mult > 0)

    def test_never_negative(self):
        model = VariationModel(sigma=0.8, clip_to_window=False)
        rng = np.random.default_rng(1)
        out = model.perturb(np.full(10_000, 1e-5), rng)
        assert np.all(out >= 0)

    def test_clip_to_window(self):
        spec = DeviceSpec.paper_linear_range()
        model = VariationModel(sigma=0.5)
        rng = np.random.default_rng(2)
        out = model.perturb(np.full(10_000, spec.g_max), rng, spec=spec)
        assert np.all(out <= spec.g_max + 1e-18)
        assert np.all(out >= spec.g_min - 1e-18)

    def test_input_not_modified(self, rng):
        g = np.full((4, 4), 1e-5)
        original = g.copy()
        VariationModel(sigma=0.2).perturb(g, rng)
        assert np.array_equal(g, original)

    def test_validation(self):
        with pytest.raises(DeviceError):
            VariationModel(sigma=-0.1)
        with pytest.raises(DeviceError):
            VariationModel(sigma=0.1, distribution="cauchy")

    def test_apply_variation_wrapper(self, rng):
        g = np.full((4, 4), 1e-5)
        out = apply_variation(g, 0.1, rng)
        assert out.shape == g.shape
        assert not np.array_equal(out, g)


class TestStuckAtFaults:
    def test_zero_rates_identity(self, rng):
        spec = DeviceSpec.paper_linear_range()
        model = StuckAtFaultModel()
        g = rng.uniform(spec.g_min, spec.g_max, (16, 16))
        assert np.array_equal(model.inject(g, rng, spec), g)

    def test_fault_rates_observed(self):
        spec = DeviceSpec.paper_linear_range()
        model = StuckAtFaultModel(stuck_on_rate=0.1, stuck_off_rate=0.05)
        rng = np.random.default_rng(3)
        mid = 0.5 * (spec.g_min + spec.g_max)
        g = np.full(100_000, mid)
        out = model.inject(g, rng, spec)
        on_frac = np.mean(out == spec.g_max)
        off_frac = np.mean(out == spec.g_min)
        assert on_frac == pytest.approx(0.1, abs=5e-3)
        assert off_frac == pytest.approx(0.05, abs=5e-3)

    def test_total_rate(self):
        assert StuckAtFaultModel(0.02, 0.03).total_rate == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(DeviceError):
            StuckAtFaultModel(stuck_on_rate=1.2)
        with pytest.raises(DeviceError):
            StuckAtFaultModel(stuck_on_rate=0.6, stuck_off_rate=0.6)
