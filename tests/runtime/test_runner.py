"""ParallelRunner: ordering, crash retry, and the seeding discipline."""

import os

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.runtime import ParallelRunner, trial_rng, trial_seed_sequence

_STATE = {"offset": 0}


def _square(task):
    return task * task


def _plus_offset(task):
    return task + _STATE["offset"]


def _install_offset(offset):
    _STATE["offset"] = offset


def _crash_once(task):
    """Die hard (no exception, no cleanup) the first time each marker is
    seen — exactly what an OOM kill looks like to the pool."""
    marker, value = task
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("crashed")
        os._exit(1)
    return value * 10


def _always_crash(task):
    os._exit(1)


def _raise_value_error(task):
    raise ValueError(f"task {task!r} is bad")


def _raise_os_error(task):
    raise OSError(f"dataset file for task {task!r} is missing")


class TestSerialPath:
    def test_maps_in_order(self):
        runner = ParallelRunner(_square, workers=1)
        assert runner.map([1, 2, 3, 4]) == [1, 4, 9, 16]

    def test_empty_tasks(self):
        assert ParallelRunner(_square, workers=1).map([]) == []

    def test_initializer_runs_in_process(self):
        runner = ParallelRunner(
            _plus_offset, workers=1,
            initializer=_install_offset, initargs=(100,),
        )
        try:
            assert runner.map([1, 2]) == [101, 102]
        finally:
            _STATE["offset"] = 0

    def test_on_result_fires_per_task(self):
        seen = []
        runner = ParallelRunner(_square, workers=1)
        runner.map([2, 3], on_result=lambda task, res: seen.append((task, res)))
        assert seen == [(2, 4), (3, 9)]

    def test_validation(self):
        with pytest.raises(ExecutionError):
            ParallelRunner(_square, chunk_size=0)
        with pytest.raises(ExecutionError):
            ParallelRunner(_square, max_retries=-1)


class TestPooledPath:
    def test_results_in_task_order(self):
        runner = ParallelRunner(_square, workers=2, chunk_size=2)
        assert runner.map(list(range(7))) == [t * t for t in range(7)]

    def test_initializer_reaches_workers(self):
        runner = ParallelRunner(
            _plus_offset, workers=2,
            initializer=_install_offset, initargs=(100,),
        )
        assert runner.map([1, 2, 3]) == [101, 102, 103]

    def test_on_result_sees_every_task(self):
        seen = {}
        runner = ParallelRunner(_square, workers=2, chunk_size=2)
        runner.map(list(range(5)), on_result=seen.__setitem__)
        assert seen == {t: t * t for t in range(5)}

    def test_worker_crash_is_retried(self, tmp_path):
        """A worker dying mid-chunk breaks the pool; the runner rebuilds
        it and recomputes only the unfinished chunks."""
        marker = str(tmp_path / "crash-once")
        tasks = [(marker, v) for v in range(4)]
        runner = ParallelRunner(_crash_once, workers=2, chunk_size=2,
                                max_retries=2)
        assert runner.map(tasks) == [0, 10, 20, 30]
        assert os.path.exists(marker)

    def test_exhausted_retries_raise(self):
        runner = ParallelRunner(_always_crash, workers=2, max_retries=1)
        with pytest.raises(ExecutionError, match="crashing"):
            runner.map([1, 2])

    def test_worker_exception_propagates_unretried(self):
        runner = ParallelRunner(_raise_value_error, workers=2)
        with pytest.raises(ValueError, match="is bad"):
            runner.map([1, 2])

    def test_worker_os_error_is_not_a_crash(self):
        """A deterministic OSError raised *by the worker function* (e.g.
        a missing dataset file) must propagate unchanged — not be
        misclassified as a pool crash, silently retried max_retries
        times, and finally misreported as 'workers kept crashing'."""
        runner = ParallelRunner(_raise_os_error, workers=2, max_retries=2)
        with pytest.raises(OSError, match="is missing"):
            runner.map([1, 2])
        assert runner.pool_rebuilds == 0


class TestTelemetry:
    def test_serial_chunk_spans_match_chunk_count(self):
        from repro import telemetry

        with telemetry.capture() as session:
            runner = ParallelRunner(_square, workers=1, chunk_size=2)
            assert runner.map(list(range(7))) == [t * t for t in range(7)]
        chunk_spans = [s for s in session.tracer.spans
                       if s.name == "runner.chunk"]
        assert len(chunk_spans) == 4  # ceil(7 / 2)
        assert [s.attrs["index"] for s in chunk_spans] == [0, 1, 2, 3]
        assert [s.attrs["tasks"] for s in chunk_spans] == [2, 2, 2, 1]
        hist = session.registry.histogram("runner.chunk_seconds")
        assert hist.count == 4

    def test_serial_path_sets_utilisation_gauge(self):
        """Regression: the serial path must report the same
        ``runner.worker_utilisation`` gauge the pooled path does, so
        dashboards see runner metrics at any worker count."""
        from repro import telemetry

        with telemetry.capture() as session:
            runner = ParallelRunner(_square, workers=1, chunk_size=2)
            runner.map(list(range(7)))
        util = session.registry.gauge("runner.worker_utilisation").value
        assert util is not None and 0.0 < util <= 1.0

    def test_pooled_chunk_spans_match_chunk_count(self):
        from repro import telemetry

        with telemetry.capture() as session:
            runner = ParallelRunner(_square, workers=2, chunk_size=2)
            assert runner.map(list(range(5))) == [t * t for t in range(5)]
        chunk_spans = [s for s in session.tracer.spans
                       if s.name == "runner.chunk"]
        assert len(chunk_spans) == 3  # ceil(5 / 2)
        assert sorted(s.attrs["index"] for s in chunk_spans) == [0, 1, 2]
        util = session.registry.gauge("runner.worker_utilisation").value
        assert util is not None and 0.0 <= util <= 1.0

    def test_pool_rebuilds_counted_and_exposed(self, tmp_path):
        from repro import telemetry

        marker = str(tmp_path / "crash-once")
        tasks = [(marker, v) for v in range(4)]
        runner = ParallelRunner(_crash_once, workers=2, chunk_size=2,
                                max_retries=2)
        with telemetry.capture() as session:
            assert runner.map(tasks) == [0, 10, 20, 30]
        assert runner.pool_rebuilds >= 1
        counted = session.registry.counter("runner.pool_rebuilds").value
        assert counted == runner.pool_rebuilds

    def test_pool_rebuilds_reset_per_map(self):
        runner = ParallelRunner(_square, workers=1)
        runner.pool_rebuilds = 5
        runner.map([1])
        assert runner.pool_rebuilds == 0

    def test_disabled_session_records_nothing(self):
        from repro import telemetry

        assert telemetry.active() is None
        runner = ParallelRunner(_square, workers=1, chunk_size=2)
        assert runner.map([1, 2, 3]) == [1, 4, 9]


class TestSeeding:
    def test_same_token_same_stream(self):
        a = trial_rng(7, "mlp-1|0.05|3").random(8)
        b = trial_rng(7, "mlp-1|0.05|3").random(8)
        assert np.array_equal(a, b)

    def test_distinct_tokens_distinct_streams(self):
        a = trial_rng(7, "mlp-1|0.05|3").random(8)
        b = trial_rng(7, "mlp-1|0.05|4").random(8)
        assert not np.array_equal(a, b)

    def test_master_seed_matters(self):
        a = trial_rng(7, "tok").random(8)
        b = trial_rng(8, "tok").random(8)
        assert not np.array_equal(a, b)

    def test_seed_sequence_is_pure(self):
        one = trial_seed_sequence(3, "x").generate_state(4)
        two = trial_seed_sequence(3, "x").generate_state(4)
        assert np.array_equal(one, two)
