"""CampaignScheduler: DAG validation, wave ordering, resume, determinism.

The scheduler turns a campaign grid into a DAG of cells (shared
prepare work feeding independent trial groups).  These tests pin the
contracts the campaign layer builds on: dependency waves, parent-side
local cells, the ``completed`` resume probe (cell-granularity resume,
no recomputation), and byte-identical results at any worker count.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ExecutionError
from repro.runtime import CampaignCell, CampaignScheduler, trial_rng

_ORDER = []
_STATE = {"offset": 0}


def _double(payload):
    return payload * 2


def _record(payload):
    _ORDER.append(payload)
    return payload


def _plus_offset(payload):
    return payload + _STATE["offset"]


def _install_offset(offset):
    _STATE["offset"] = offset


def _seeded_draw(payload):
    """Pure function of the payload (the seeding discipline): byte-
    identical regardless of which worker runs it."""
    seed, token = payload
    return trial_rng(seed, token).random(4).tobytes()


@pytest.fixture(autouse=True)
def _clean_order():
    _ORDER.clear()
    yield
    _ORDER.clear()


class TestValidation:
    def test_duplicate_keys_rejected(self):
        scheduler = CampaignScheduler(_double)
        with pytest.raises(ConfigurationError, match="duplicate"):
            scheduler.run([CampaignCell("a"), CampaignCell("a")])

    def test_unknown_dependency_rejected(self):
        scheduler = CampaignScheduler(_double)
        with pytest.raises(ConfigurationError, match="unknown"):
            scheduler.run([CampaignCell("a", deps=("ghost",))])

    def test_cycle_raises_execution_error(self):
        scheduler = CampaignScheduler(_double)
        cells = [
            CampaignCell("a", deps=("b",)),
            CampaignCell("b", deps=("a",)),
        ]
        with pytest.raises(ExecutionError, match="cycle"):
            scheduler.run(cells)


class TestExecution:
    def test_returns_results_by_key(self):
        scheduler = CampaignScheduler(_double)
        results = scheduler.run([
            CampaignCell("a", payload=1),
            CampaignCell("b", payload=2),
        ])
        assert results == {"a": 2, "b": 4}

    def test_diamond_dependency_order(self):
        """a -> (b, c) -> d executes in dependency order."""
        scheduler = CampaignScheduler(_record)
        cells = [
            CampaignCell("d", payload="d", deps=("b", "c")),
            CampaignCell("b", payload="b", deps=("a",)),
            CampaignCell("c", payload="c", deps=("a",)),
            CampaignCell("a", payload="a"),
        ]
        results = scheduler.run(cells)
        assert set(results) == {"a", "b", "c", "d"}
        assert _ORDER.index("a") < _ORDER.index("b")
        assert _ORDER.index("a") < _ORDER.index("c")
        assert _ORDER.index("d") > _ORDER.index("b")
        assert _ORDER.index("d") > _ORDER.index("c")

    def test_local_cells_run_in_parent(self):
        """At workers > 1 a local cell's side effects land in the
        parent process (a pooled cell's would stay in the child)."""
        scheduler = CampaignScheduler(
            _double, workers=2,
            local_fn=lambda cell: _ORDER.append(cell.key) or cell.key,
        )
        cells = [
            CampaignCell("prepare", local=True),
            CampaignCell("g0", payload=3, deps=("prepare",)),
            CampaignCell("g1", payload=4, deps=("prepare",)),
        ]
        results = scheduler.run(cells)
        assert _ORDER == ["prepare"]
        assert results["g0"] == 6 and results["g1"] == 8

    def test_local_default_uses_worker_fn_with_initializer(self):
        scheduler = CampaignScheduler(
            _plus_offset, initializer=_install_offset, initargs=(100,),
        )
        results = scheduler.run([
            CampaignCell("a", payload=1, local=True),
            CampaignCell("b", payload=2, local=True),
        ])
        assert results == {"a": 101, "b": 102}

    def test_on_result_fires_for_computed_cells(self):
        seen = []
        scheduler = CampaignScheduler(_double)
        scheduler.run(
            [CampaignCell("a", payload=1), CampaignCell("b", payload=2)],
            on_result=lambda cell, result: seen.append((cell.key, result)),
        )
        assert sorted(seen) == [("a", 2), ("b", 4)]

    def test_duplicate_payloads_map_to_right_cells(self):
        """Cells are attributed by key, not payload identity."""
        scheduler = CampaignScheduler(_double, workers=2)
        results = scheduler.run([
            CampaignCell("a", payload=5),
            CampaignCell("b", payload=5),
        ])
        assert results == {"a": 10, "b": 10}


class TestResume:
    def test_completed_probe_skips_cells(self):
        cached = {"a": "stored-a"}
        seen = []
        scheduler = CampaignScheduler(_record)
        results = scheduler.run(
            [CampaignCell("a", payload="a"), CampaignCell("b", payload="b")],
            on_result=lambda cell, result: seen.append(cell.key),
            completed=lambda cell: cached.get(cell.key),
        )
        # Resumed cell: cached result used, not recomputed, no merge hook.
        assert results["a"] == "stored-a"
        assert _ORDER == ["b"]
        assert seen == ["b"]

    def test_resumed_cells_satisfy_dependencies(self):
        cached = {"prepare": True}
        scheduler = CampaignScheduler(_double)
        results = scheduler.run(
            [
                CampaignCell("prepare", local=True),
                CampaignCell("g0", payload=1, deps=("prepare",)),
            ],
            completed=lambda cell: cached.get(cell.key),
        )
        assert results == {"prepare": True, "g0": 2}

    def test_fully_cached_grid_computes_nothing(self):
        scheduler = CampaignScheduler(_record)
        results = scheduler.run(
            [CampaignCell("a", payload="a")],
            completed=lambda cell: "cached",
        )
        assert results == {"a": "cached"}
        assert _ORDER == []


class TestDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_byte_identical_across_worker_counts(self, workers):
        cells = [
            CampaignCell(f"cell/{i}", payload=(7, f"tok-{i}"))
            for i in range(6)
        ]
        scheduler = CampaignScheduler(_seeded_draw, workers=workers)
        results = scheduler.run(cells)
        reference = {
            cell.key: trial_rng(7, f"tok-{i}").random(4).tobytes()
            for i, cell in enumerate(cells)
        }
        assert results == reference

    def test_results_are_numpy_equal_across_worker_counts(self):
        cells = [CampaignCell(f"c{i}", payload=(3, str(i)))
                 for i in range(5)]
        serial = CampaignScheduler(_seeded_draw, workers=1).run(cells)
        pooled = CampaignScheduler(_seeded_draw, workers=2,
                                   chunk_size=2).run(cells)
        for key in serial:
            assert np.array_equal(
                np.frombuffer(serial[key]), np.frombuffer(pooled[key])
            )


class TestTelemetry:
    def test_counts_completed_resumed_and_waves(self):
        from repro import telemetry

        cached = {"a": "stored"}
        cells = [
            CampaignCell("a", payload="a"),
            CampaignCell("b", payload="b"),
            CampaignCell("c", payload="c", deps=("b",)),
        ]
        with telemetry.capture() as session:
            scheduler = CampaignScheduler(_record)
            scheduler.run(cells,
                          completed=lambda cell: cached.get(cell.key))
        assert session.registry.counter(
            "scheduler.cells.resumed").value == 1
        assert session.registry.counter(
            "scheduler.cells.completed").value == 2
        assert session.registry.gauge("scheduler.waves").value == 2

    def test_pool_rebuilds_aggregated(self):
        scheduler = CampaignScheduler(_double, workers=2)
        scheduler.run([CampaignCell("a", payload=1)])
        assert scheduler.pool_rebuilds == 0
