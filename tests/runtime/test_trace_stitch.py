"""Cross-process trace stitching: worker span trees graft under the
parent's chunk/cell spans into one trace."""

import multiprocessing

import pytest

from repro.runtime import CampaignCell, CampaignScheduler, ParallelRunner
from repro.telemetry import context
from repro.telemetry import session as telemetry

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="cross-process stitching needs fork-inherited sessions",
)


def _traced_double(payload):
    with telemetry.span("work.step", payload=payload):
        return payload * 2


class TestRunnerGraft:
    @needs_fork
    def test_pooled_worker_spans_graft_under_chunk_spans(self):
        with telemetry.capture() as session:
            with context.trace_scope("job-1"):
                out = ParallelRunner(_traced_double, workers=2).map(
                    [1, 2, 3]
                )
        assert out == [2, 4, 6]
        chunks = [s for s in session.tracer.spans
                  if s.name == "runner.chunk"]
        steps = [s for s in session.tracer.spans if s.name == "work.step"]
        assert len(chunks) == 3
        assert len(steps) == 3
        chunk_ids = {s.span_id: s for s in chunks}
        for step in steps:
            parent = chunk_ids[step.parent_id]
            assert step.depth == parent.depth + 1
            assert step.trace_id == "job-1"
        # Grafted spans keep their payloads attributable to the chunk
        # that computed them.
        by_chunk = {chunk_ids[s.parent_id].attrs["index"]:
                    s.attrs["payload"] for s in steps}
        assert by_chunk == {0: 1, 1: 2, 2: 3}

    def test_serial_worker_spans_share_the_trace(self):
        with telemetry.capture() as session:
            with context.trace_scope("job-2"):
                ParallelRunner(_traced_double, workers=1).map([1, 2])
        assert all(s.trace_id == "job-2" for s in session.tracer.spans)
        names = [s.name for s in session.tracer.spans]
        assert names.count("work.step") == 2
        assert names.count("runner.chunk") == 2


class TestSchedulerCells:
    @needs_fork
    def test_worker_spans_stitch_under_cell_spans(self):
        cells = [
            CampaignCell(key="prep", payload=0, local=True),
            CampaignCell(key="a", payload=1, deps=("prep",)),
            CampaignCell(key="b", payload=2, deps=("prep",)),
        ]
        with telemetry.capture() as session:
            with context.trace_scope("camp-1"):
                results = CampaignScheduler(_traced_double, workers=2).run(
                    cells
                )
        assert results == {"prep": 0, "a": 2, "b": 4}
        cell_spans = {s.attrs.get("cell"): s for s in session.tracer.spans
                      if s.name == "scheduler.cell"}
        assert set(cell_spans) == {"prep", "a", "b"}
        assert cell_spans["prep"].attrs["local"] is True
        steps = [s for s in session.tracer.spans if s.name == "work.step"]
        # prep runs in-parent (one step), a and b in workers (grafted).
        assert len(steps) == 3
        for step in steps:
            assert step.trace_id == "camp-1"
        pooled_steps = [s for s in steps if s.attrs["payload"] in (1, 2)]
        for step in pooled_steps:
            parent = next(s for s in session.tracer.spans
                          if s.span_id == step.parent_id)
            assert parent.name == "scheduler.cell"
            assert step.depth == parent.depth + 1

    def test_serial_cells_labelled_without_pool(self):
        cells = [CampaignCell(key="only", payload=3)]
        with telemetry.capture() as session:
            CampaignScheduler(_traced_double, workers=1).run(cells)
        (cell_span,) = [s for s in session.tracer.spans
                        if s.name == "scheduler.cell"]
        assert cell_span.attrs["cell"] == "only"
        assert cell_span.attrs["tasks"] == 1
