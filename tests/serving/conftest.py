"""Serving fixtures: a fast toy registry (no training, ideal backend)."""

import time

import numpy as np
import pytest

from repro.mapping import IdealBackend, PIMExecutor, compile_network
from repro.nn import Dense, ReLU, Sequential
from repro.serving import ModelEntry, ModelRegistry


@pytest.fixture
def entry(rng):
    model = Sequential(
        [Dense(12, 8, rng=rng), ReLU(), Dense(8, 4, rng=rng)], name="toy"
    )
    mapped = compile_network(model, IdealBackend())
    executor = PIMExecutor(mapped, rng.random((16, 12)))
    return ModelEntry(name="toy", executor=executor, input_shape=(12,))


class SlowEntry(ModelEntry):
    """Holds the compute thread long enough to fill queues in tests."""

    delay_s = 0.05

    def predict(self, x):
        time.sleep(self.delay_s)
        return super().predict(x)


@pytest.fixture
def slow_entry(entry):
    return SlowEntry(
        name=entry.name,
        executor=entry.executor,
        input_shape=entry.input_shape,
    )


class ScriptedEntry(ModelEntry):
    """Predict outcomes scripted per call: "ok", "fail", or a float —
    seconds to stall before answering (drives breaker/timeout tests)."""

    def __init__(self, *args, script=(), **kwargs):
        super().__init__(*args, **kwargs)
        self.script = list(script)
        self.calls = 0

    def predict(self, x):
        action = self.script[self.calls] if self.calls < len(self.script) \
            else "ok"
        self.calls += 1
        if action == "fail":
            raise RuntimeError("scripted compute failure")
        if isinstance(action, (int, float)):
            time.sleep(float(action))
        return super().predict(x)


@pytest.fixture
def scripted_entry(entry):
    def make(script):
        return ScriptedEntry(
            name=entry.name,
            executor=entry.executor,
            input_shape=entry.input_shape,
            script=script,
        )

    return make


@pytest.fixture
def registry(entry):
    return ModelRegistry([entry])


@pytest.fixture
def rows(rng):
    return [rng.random((1, 12)) for _ in range(24)]


def serial_labels(entry, rows):
    """Reference predictions: one serial executor pass over the rows."""
    return entry.executor.predict(np.concatenate(rows, axis=0)).tolist()
