"""MicroBatcher: coalescing identity, backpressure, drain semantics."""

import asyncio
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.errors import (
    BackpressureError,
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    ExecutionError,
)
from repro.serving import CircuitBreaker, MicroBatcher, ServingConfig

from .conftest import serial_labels
from .test_resilience import FakeClock


def _run(coro):
    return asyncio.run(coro)


def _batcher(entry, **kwargs):
    compute = ThreadPoolExecutor(max_workers=1)
    defaults = dict(max_batch=8, window_s=0.0, queue_depth=32)
    defaults.update(kwargs)
    return MicroBatcher(entry, compute, **defaults), compute


class TestCoalescingIdentity:
    def test_concurrent_submits_equal_serial_predict(self, entry, rows):
        """N coalesced requests answer byte-identically to one serial
        executor pass over the same rows."""

        async def body():
            batcher, compute = _batcher(entry, window_s=0.005)
            batcher.start()
            try:
                tasks = [
                    asyncio.ensure_future(batcher.submit(row))
                    for row in rows
                ]
                return await asyncio.gather(*tasks)
            finally:
                await batcher.drain()
                compute.shutdown()

        results = _run(body())
        served = [int(r.predictions[0]) for r in results]
        assert served == serial_labels(entry, rows)
        assert any(r.batch_requests > 1 for r in results), (
            "no request was ever coalesced — the window never batched"
        )

    def test_multi_row_requests_scatter_correctly(self, entry, rng):
        chunks = [rng.random((n, 12)) for n in (3, 1, 4)]

        async def body():
            batcher, compute = _batcher(entry, window_s=0.005)
            batcher.start()
            try:
                return await asyncio.gather(
                    *[asyncio.ensure_future(batcher.submit(c))
                      for c in chunks]
                )
            finally:
                await batcher.drain()
                compute.shutdown()

        results = _run(body())
        reference = entry.executor.predict(np.concatenate(chunks, axis=0))
        scattered = np.concatenate([r.predictions for r in results])
        assert np.array_equal(scattered, reference)
        assert [len(r.predictions) for r in results] == [3, 1, 4]

    def test_launch_shares_sum_to_batch_total(self, entry, rng):
        chunks = [rng.random((n, 12)) for n in (2, 6)]

        async def body():
            batcher, compute = _batcher(entry, window_s=0.005)
            batcher.start()
            try:
                return await asyncio.gather(
                    *[asyncio.ensure_future(batcher.submit(c))
                      for c in chunks]
                )
            finally:
                await batcher.drain()
                compute.shutdown()

        results = _run(body())
        total = sum(r.mvm_launches for r in results)
        assert total > 0
        # Shares are row-proportional: 2 rows vs 6 rows -> 1:3.
        assert results[1].mvm_launches == pytest.approx(
            3 * results[0].mvm_launches
        )


class TestBackpressure:
    def test_queue_bound_rejects(self, slow_entry, rows):
        async def body():
            batcher, compute = _batcher(
                slow_entry, max_batch=1, queue_depth=2
            )
            batcher.start()
            try:
                tasks = [
                    asyncio.ensure_future(batcher.submit(row))
                    for row in rows[:8]
                ]
                settled = await asyncio.gather(*tasks, return_exceptions=True)
            finally:
                await batcher.drain()
                compute.shutdown()
            return settled, batcher

        settled, batcher = _run(body())
        rejected = [s for s in settled if isinstance(s, BackpressureError)]
        served = [s for s in settled if not isinstance(s, Exception)]
        assert rejected, "queue bound never pushed back"
        assert served, "backpressure rejected everything"
        assert batcher.rejected_total == len(rejected)
        assert all("queue is full" in str(r) for r in rejected)

    def test_draining_rejects_new_submits(self, entry, rows):
        async def body():
            batcher, compute = _batcher(entry)
            batcher.start()
            await batcher.drain()
            try:
                with pytest.raises(BackpressureError, match="draining"):
                    await batcher.submit(rows[0])
            finally:
                compute.shutdown()

        _run(body())


class TestDrain:
    def test_drain_completes_inflight_requests(self, slow_entry, rows):
        """Every request queued before drain is answered, none dropped."""

        async def body():
            batcher, compute = _batcher(slow_entry, max_batch=4)
            batcher.start()
            tasks = [
                asyncio.ensure_future(batcher.submit(row))
                for row in rows[:6]
            ]
            await asyncio.sleep(0)  # let submits enqueue
            await batcher.drain()
            results = await asyncio.gather(*tasks)
            compute.shutdown()
            return results

        results = _run(body())
        assert len(results) == 6
        served = [int(r.predictions[0]) for r in results]
        assert served == serial_labels(slow_entry, rows[:6])

    def test_idle_drain_runs_the_empty_flush_barrier(self, entry):
        """Draining an idle batcher pushes one zero-row batch through
        the full compute path — the crash the executor empty-batch fix
        removed."""

        async def body():
            batcher, compute = _batcher(entry)
            batcher.start()
            await batcher.drain()
            compute.shutdown()
            return batcher

        batcher = _run(body())
        assert batcher.batches_total == 1  # the end-of-stream barrier
        assert batcher.requests_total == 0


class TestDeadlineAdmission:
    def test_first_request_admitted_without_estimate(self, entry, rows):
        """No EWMA sample yet -> admission is optimistic, even for a
        deadline the service time would later predict as missed."""

        async def body():
            batcher, compute = _batcher(entry)
            batcher.start()
            try:
                return await batcher.submit(rows[0], deadline_s=10.0), batcher
            finally:
                await batcher.drain()
                compute.shutdown()

        result, batcher = _run(body())
        assert int(result.predictions[0]) == serial_labels(entry, rows[:1])[0]
        assert batcher.shed_deadline_total == 0
        assert batcher.estimator.samples == 1

    def test_enqueue_shed_when_ewma_predicts_miss(self, entry, rows):
        """Predicted wait beyond the deadline -> shed at admission with
        a computed Retry-After, not a queue-full 429."""

        async def body():
            batcher, compute = _batcher(entry)
            batcher.start()
            batcher.estimator.observe(0.25)  # pretend batches take 250 ms
            try:
                with pytest.raises(DeadlineExceededError) as err:
                    await batcher.submit(rows[0], deadline_s=0.01)
            finally:
                await batcher.drain()
                compute.shutdown()
            return batcher, err.value

        batcher, exc = _run(body())
        assert not isinstance(exc, BackpressureError), (
            "deadline shed must be a distinct taxonomy from queue-full"
        )
        assert "shed at admission" in str(exc)
        assert exc.retry_after_s == pytest.approx(0.25)
        assert batcher.shed_deadline_total == 1
        assert batcher.rejected_total == 0
        assert batcher.requests_total == 0, "shed requests never enqueue"

    def test_expiry_shed_at_dequeue(self, slow_entry, rows):
        """A request that ages out while queued behind a slow batch is
        shed at dequeue instead of wasting a forward pass."""

        async def body():
            batcher, compute = _batcher(slow_entry, max_batch=1)
            batcher.start()
            first = asyncio.ensure_future(batcher.submit(rows[0]))
            await asyncio.sleep(0.01)  # first batch is now in-flight
            late = asyncio.ensure_future(
                batcher.submit(rows[1], deadline_s=0.005)
            )
            settled = await asyncio.gather(
                first, late, return_exceptions=True
            )
            await batcher.drain()
            compute.shutdown()
            return settled, batcher

        (first, late), batcher = _run(body())
        assert int(first.predictions[0]) == \
            serial_labels(slow_entry, rows[:1])[0]
        assert isinstance(late, DeadlineExceededError)
        assert "shed at dequeue" in str(late)
        assert late.retry_after_s > 0
        assert batcher.shed_expired_total == 1


class TestComputeSupervision:
    def test_timeout_fails_batch_and_rebuilds_pool(
        self, scripted_entry, entry, rows
    ):
        """A hung forward pass answers its waiters with 503-material
        ExecutionError, the pool is rebuilt, and the next batch runs."""

        async def body():
            stalling = scripted_entry([0.3])  # first call stalls 300 ms
            batcher, compute = _batcher(stalling, compute_timeout_s=0.05)
            batcher.start()
            try:
                with pytest.raises(ExecutionError, match="compute timeout"):
                    await batcher.submit(rows[0])
                result = await batcher.submit(rows[1])
            finally:
                await batcher.drain()
                batcher._compute.shutdown()
                compute.shutdown()
            return batcher, result

        batcher, result = _run(body())
        assert batcher.compute_timeouts_total == 1
        assert batcher._compute.rebuilds == 1
        assert int(result.predictions[0]) == serial_labels(entry, rows[1:2])[0]

    def test_breaker_opens_then_probe_recloses(
        self, scripted_entry, entry, rows
    ):
        """Consecutive compute failures trip the per-model breaker;
        after the cooldown one probe batch closes it again."""
        clock = FakeClock()

        async def body():
            flaky = scripted_entry(["fail", "fail"])
            breaker = CircuitBreaker(threshold=2, cooldown_s=60.0,
                                     clock=clock)
            batcher, compute = _batcher(flaky, breaker=breaker)
            batcher.start()
            try:
                for k in range(2):
                    with pytest.raises(RuntimeError, match="scripted"):
                        await batcher.submit(rows[k])
                with pytest.raises(CircuitOpenError) as err:
                    await batcher.submit(rows[2])
                assert 0 < err.value.retry_after_s <= 60.0
                clock.advance(61.0)  # cooldown elapses -> half-open
                result = await batcher.submit(rows[3])
            finally:
                await batcher.drain()
                compute.shutdown()
            return batcher, breaker, result

        batcher, breaker, result = _run(body())
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.opens_total == 1
        assert breaker.probes_total == 1
        assert batcher.compute_failures_total == 2
        assert batcher.breaker_rejected_total == 1
        assert int(result.predictions[0]) == serial_labels(entry, rows[3:4])[0]

    def test_breaker_trip_fails_queued_requests(self, scripted_entry, rows):
        """When a flush trips the breaker, requests already queued are
        answered with CircuitOpenError — never silently abandoned."""

        async def body():
            flaky = scripted_entry(["fail"])
            breaker = CircuitBreaker(threshold=1, cooldown_s=60.0,
                                     clock=FakeClock())
            batcher, compute = _batcher(flaky, max_batch=1, breaker=breaker)
            batcher.start()
            first = asyncio.ensure_future(batcher.submit(rows[0]))
            queued = asyncio.ensure_future(batcher.submit(rows[1]))
            settled = await asyncio.gather(
                first, queued, return_exceptions=True
            )
            opened = breaker.opens_total
            await batcher.drain()
            compute.shutdown()
            return settled, opened

        (first, queued), opened = _run(body())
        assert isinstance(first, RuntimeError)
        assert isinstance(queued, CircuitOpenError)
        assert "while this request was queued" in str(queued)
        assert opened == 1


class TestEnsemble:
    def test_majority_vote_matches_predict_trials(self, entry, rng):
        from repro.runtime import trial_rng
        from repro.serving import ModelEntry

        clones = [
            entry.executor.perturbed(trial_rng(0, f"serve|{t}"), 0.15).network
            for t in range(5)
        ]
        voted = ModelEntry(
            name="toy", executor=entry.executor,
            input_shape=(12,), ensemble=clones,
        )
        x = rng.random((7, 12))
        trials = entry.executor.predict_trials(x, clones)
        expected = []
        for j in range(x.shape[0]):
            values, counts = np.unique(trials[:, j], return_counts=True)
            expected.append(int(values[np.argmax(counts)]))
        assert voted.predict(x).tolist() == expected
        assert voted.ensemble_trials == 5

    def test_ensemble_empty_batch(self, entry):
        from repro.runtime import trial_rng
        from repro.serving import ModelEntry

        clones = [
            entry.executor.perturbed(trial_rng(0, f"serve|{t}"), 0.15).network
            for t in range(3)
        ]
        voted = ModelEntry(
            name="toy", executor=entry.executor,
            input_shape=(12,), ensemble=clones,
        )
        assert voted.predict(np.zeros((0, 12))).shape == (0,)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServingConfig(max_batch=0)
        with pytest.raises(ConfigurationError):
            ServingConfig(queue_depth=0)
        with pytest.raises(ConfigurationError):
            ServingConfig(batch_window_s=-0.1)
        with pytest.raises(ConfigurationError):
            ServingConfig(models=())
        with pytest.raises(ConfigurationError, match="together"):
            ServingConfig(ensemble_trials=4)  # sigma missing
