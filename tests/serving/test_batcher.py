"""MicroBatcher: coalescing identity, backpressure, drain semantics."""

import asyncio
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.errors import BackpressureError, ConfigurationError
from repro.serving import MicroBatcher, ServingConfig

from .conftest import serial_labels


def _run(coro):
    return asyncio.run(coro)


def _batcher(entry, **kwargs):
    compute = ThreadPoolExecutor(max_workers=1)
    defaults = dict(max_batch=8, window_s=0.0, queue_depth=32)
    defaults.update(kwargs)
    return MicroBatcher(entry, compute, **defaults), compute


class TestCoalescingIdentity:
    def test_concurrent_submits_equal_serial_predict(self, entry, rows):
        """N coalesced requests answer byte-identically to one serial
        executor pass over the same rows."""

        async def body():
            batcher, compute = _batcher(entry, window_s=0.005)
            batcher.start()
            try:
                tasks = [
                    asyncio.ensure_future(batcher.submit(row))
                    for row in rows
                ]
                return await asyncio.gather(*tasks)
            finally:
                await batcher.drain()
                compute.shutdown()

        results = _run(body())
        served = [int(r.predictions[0]) for r in results]
        assert served == serial_labels(entry, rows)
        assert any(r.batch_requests > 1 for r in results), (
            "no request was ever coalesced — the window never batched"
        )

    def test_multi_row_requests_scatter_correctly(self, entry, rng):
        chunks = [rng.random((n, 12)) for n in (3, 1, 4)]

        async def body():
            batcher, compute = _batcher(entry, window_s=0.005)
            batcher.start()
            try:
                return await asyncio.gather(
                    *[asyncio.ensure_future(batcher.submit(c))
                      for c in chunks]
                )
            finally:
                await batcher.drain()
                compute.shutdown()

        results = _run(body())
        reference = entry.executor.predict(np.concatenate(chunks, axis=0))
        scattered = np.concatenate([r.predictions for r in results])
        assert np.array_equal(scattered, reference)
        assert [len(r.predictions) for r in results] == [3, 1, 4]

    def test_launch_shares_sum_to_batch_total(self, entry, rng):
        chunks = [rng.random((n, 12)) for n in (2, 6)]

        async def body():
            batcher, compute = _batcher(entry, window_s=0.005)
            batcher.start()
            try:
                return await asyncio.gather(
                    *[asyncio.ensure_future(batcher.submit(c))
                      for c in chunks]
                )
            finally:
                await batcher.drain()
                compute.shutdown()

        results = _run(body())
        total = sum(r.mvm_launches for r in results)
        assert total > 0
        # Shares are row-proportional: 2 rows vs 6 rows -> 1:3.
        assert results[1].mvm_launches == pytest.approx(
            3 * results[0].mvm_launches
        )


class TestBackpressure:
    def test_queue_bound_rejects(self, slow_entry, rows):
        async def body():
            batcher, compute = _batcher(
                slow_entry, max_batch=1, queue_depth=2
            )
            batcher.start()
            try:
                tasks = [
                    asyncio.ensure_future(batcher.submit(row))
                    for row in rows[:8]
                ]
                settled = await asyncio.gather(*tasks, return_exceptions=True)
            finally:
                await batcher.drain()
                compute.shutdown()
            return settled, batcher

        settled, batcher = _run(body())
        rejected = [s for s in settled if isinstance(s, BackpressureError)]
        served = [s for s in settled if not isinstance(s, Exception)]
        assert rejected, "queue bound never pushed back"
        assert served, "backpressure rejected everything"
        assert batcher.rejected_total == len(rejected)
        assert all("queue is full" in str(r) for r in rejected)

    def test_draining_rejects_new_submits(self, entry, rows):
        async def body():
            batcher, compute = _batcher(entry)
            batcher.start()
            await batcher.drain()
            try:
                with pytest.raises(BackpressureError, match="draining"):
                    await batcher.submit(rows[0])
            finally:
                compute.shutdown()

        _run(body())


class TestDrain:
    def test_drain_completes_inflight_requests(self, slow_entry, rows):
        """Every request queued before drain is answered, none dropped."""

        async def body():
            batcher, compute = _batcher(slow_entry, max_batch=4)
            batcher.start()
            tasks = [
                asyncio.ensure_future(batcher.submit(row))
                for row in rows[:6]
            ]
            await asyncio.sleep(0)  # let submits enqueue
            await batcher.drain()
            results = await asyncio.gather(*tasks)
            compute.shutdown()
            return results

        results = _run(body())
        assert len(results) == 6
        served = [int(r.predictions[0]) for r in results]
        assert served == serial_labels(slow_entry, rows[:6])

    def test_idle_drain_runs_the_empty_flush_barrier(self, entry):
        """Draining an idle batcher pushes one zero-row batch through
        the full compute path — the crash the executor empty-batch fix
        removed."""

        async def body():
            batcher, compute = _batcher(entry)
            batcher.start()
            await batcher.drain()
            compute.shutdown()
            return batcher

        batcher = _run(body())
        assert batcher.batches_total == 1  # the end-of-stream barrier
        assert batcher.requests_total == 0


class TestEnsemble:
    def test_majority_vote_matches_predict_trials(self, entry, rng):
        from repro.runtime import trial_rng
        from repro.serving import ModelEntry

        clones = [
            entry.executor.perturbed(trial_rng(0, f"serve|{t}"), 0.15).network
            for t in range(5)
        ]
        voted = ModelEntry(
            name="toy", executor=entry.executor,
            input_shape=(12,), ensemble=clones,
        )
        x = rng.random((7, 12))
        trials = entry.executor.predict_trials(x, clones)
        expected = []
        for j in range(x.shape[0]):
            values, counts = np.unique(trials[:, j], return_counts=True)
            expected.append(int(values[np.argmax(counts)]))
        assert voted.predict(x).tolist() == expected
        assert voted.ensemble_trials == 5

    def test_ensemble_empty_batch(self, entry):
        from repro.runtime import trial_rng
        from repro.serving import ModelEntry

        clones = [
            entry.executor.perturbed(trial_rng(0, f"serve|{t}"), 0.15).network
            for t in range(3)
        ]
        voted = ModelEntry(
            name="toy", executor=entry.executor,
            input_shape=(12,), ensemble=clones,
        )
        assert voted.predict(np.zeros((0, 12))).shape == (0,)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServingConfig(max_batch=0)
        with pytest.raises(ConfigurationError):
            ServingConfig(queue_depth=0)
        with pytest.raises(ConfigurationError):
            ServingConfig(batch_window_s=-0.1)
        with pytest.raises(ConfigurationError):
            ServingConfig(models=())
        with pytest.raises(ConfigurationError, match="together"):
            ServingConfig(ensemble_trials=4)  # sigma missing
