"""Client-side behaviour: transport-error taxonomy and retry policy.

The regression pinned here: a connection dropped mid-exchange raises
``http.client.BadStatusLine`` — an ``HTTPException``, *not* an
``OSError`` — and the load generator used to let it kill the worker
thread instead of counting it as an error.
"""

import http.client
import socket
import threading

import pytest

from repro.errors import ExecutionError
from repro.serving import BackgroundServer, RetryPolicy, ServingConfig
from repro.serving import client


@pytest.fixture
def garbage_server():
    """A listener that answers every connection with a non-HTTP line
    then closes — the client sees ``BadStatusLine`` (HTTPException)."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    sock.listen(8)
    sock.settimeout(0.1)
    stop = threading.Event()
    accepted = []

    def serve():
        while not stop.is_set():
            try:
                conn, _ = sock.accept()
            except socket.timeout:
                continue
            accepted.append(1)
            try:
                conn.recv(65536)
                conn.sendall(b"garbage\r\n\r\n")
            except OSError:
                pass
            conn.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    try:
        yield "127.0.0.1", sock.getsockname()[1], accepted
    finally:
        stop.set()
        thread.join(timeout=2.0)
        sock.close()


class TestTransportErrors:
    def test_http_exception_is_a_transport_error(self):
        assert http.client.HTTPException in client.TRANSPORT_ERRORS
        assert OSError in client.TRANSPORT_ERRORS
        assert issubclass(http.client.BadStatusLine,
                          http.client.HTTPException)
        assert not issubclass(http.client.BadStatusLine, OSError)

    def test_garbage_response_raises_http_exception(self, garbage_server,
                                                    rows):
        host, port, _ = garbage_server
        with pytest.raises(http.client.HTTPException):
            client.predict(host, port, "toy", rows[0], timeout=5.0)

    def test_run_load_counts_transport_errors(self, garbage_server, rows):
        """Workers must survive BadStatusLine and count it — the report
        error count proves no thread died mid-run."""
        host, port, _ = garbage_server
        with pytest.raises(ExecutionError, match=r"\(2 errors\)"):
            client.run_load(
                host, port, "toy", rows,
                concurrency=1, requests_per_worker=2, timeout=5.0,
            )


class TestRetryTransport:
    def test_retry_exhausts_attempts_then_raises(self, garbage_server,
                                                 rows):
        host, port, accepted = garbage_server
        policy = RetryPolicy(max_attempts=3, base_backoff_s=0.005,
                             max_backoff_s=0.01, jitter=0.0,
                             total_budget_s=30.0)
        with pytest.raises(http.client.HTTPException):
            client.predict(host, port, "toy", rows[0], timeout=5.0,
                           retry=policy)
        assert len(accepted) == 3, "every attempt should hit the server"

    def test_zero_budget_disables_retrying(self, garbage_server, rows):
        host, port, accepted = garbage_server
        policy = RetryPolicy(max_attempts=10, base_backoff_s=0.05,
                             max_backoff_s=0.05, jitter=0.0,
                             total_budget_s=0.0)
        with pytest.raises(http.client.HTTPException):
            client.predict(host, port, "toy", rows[0], timeout=5.0,
                           retry=policy)
        assert len(accepted) == 1


class TestLoadGeneratorResilience:
    def test_run_load_retries_recover_goodput(self, registry, rows):
        """With chaos dropping two connections, a retrying load run
        completes every request and reports the spent retries."""
        from repro.chaos import ChaosPlan, ConnectionDropInjector

        chaos = ChaosPlan([ConnectionDropInjector(after=1, count=2)])
        config = ServingConfig(port=0, models=("toy",),
                               batch_window_s=0.005)
        policy = RetryPolicy(max_attempts=4, base_backoff_s=0.005,
                             max_backoff_s=0.01, jitter=0.0,
                             total_budget_s=30.0, seed=3)
        with BackgroundServer(registry, config, chaos=chaos) as server:
            report = client.run_load(
                server.host, server.port, "toy", rows,
                concurrency=1, requests_per_worker=4,
                timeout=5.0, retry=policy,
            )
        assert report.requests == 4
        assert report.errors == 0
        assert report.retries >= 2, "the dropped connections were retried"
