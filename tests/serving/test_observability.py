"""Observability end-to-end: /metrics content negotiation, stitched
request traces, and trace-id propagation into load reports."""

import http.client

import pytest

from repro.serving import (
    BackgroundServer,
    ModelRegistry,
    RetryPolicy,
    ServingConfig,
)
from repro.serving import client
from repro.telemetry import session as telemetry
from repro.telemetry.openmetrics import CONTENT_TYPE, parse_openmetrics


def _config(**kwargs):
    defaults = dict(port=0, models=("toy",), batch_window_s=0.005)
    defaults.update(kwargs)
    return ServingConfig(**defaults)


def fetch_metrics_text(host, port):
    """GET /metrics asking for the OpenMetrics exposition."""
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request(
            "GET", "/metrics",
            headers={"Accept": "application/openmetrics-text"},
        )
        response = conn.getresponse()
        return (response.status, response.getheader("Content-Type"),
                response.read().decode())
    finally:
        conn.close()


class TestMetricsNegotiation:
    def test_openmetrics_exposition_is_valid(self, registry, rows):
        with BackgroundServer(registry, _config()) as server:
            status, _ = client.predict(
                server.host, server.port, "toy", rows[0]
            )
            assert status == 200
            status, content_type, text = fetch_metrics_text(
                server.host, server.port
            )
        assert status == 200
        assert content_type == CONTENT_TYPE
        parsed = parse_openmetrics(text)
        assert parsed["families"]["repro_serve_requests"] == "counter"
        by_sample = {
            (name, labels.get("model")): value
            for name, labels, value in parsed["samples"]
        }
        assert by_sample[("repro_serve_requests_total", "toy")] == 1

    def test_default_json_form_unchanged(self, registry, rows):
        with BackgroundServer(registry, _config()) as server:
            client.predict(server.host, server.port, "toy", rows[0])
            status, doc = client.request(
                server.host, server.port, "GET", "/metrics"
            )
        assert status == 200
        assert doc["totals"]["requests"] == 1
        assert doc["models"]["toy"]["batches"] == 1

    def test_text_and_json_counters_agree(self, registry, rows):
        """Two renderings of the same counters: every per-model counter
        in the JSON snapshot appears with the same value in the text."""
        with BackgroundServer(registry, _config()) as server:
            for row in rows[:3]:
                client.predict(server.host, server.port, "toy", row)
            _, doc = client.request(
                server.host, server.port, "GET", "/metrics"
            )
            _, _, text = fetch_metrics_text(server.host, server.port)
        by_sample = {
            (name, labels.get("model")): value
            for name, labels, value in parse_openmetrics(text)["samples"]
        }
        toy = doc["models"]["toy"]
        for json_key, family in (
            ("requests", "repro_serve_requests_total"),
            ("batches", "repro_serve_batches_total"),
            ("coalesced", "repro_serve_coalesced_total"),
            ("rejected", "repro_serve_rejected_total"),
            ("shed_deadline", "repro_serve_shed_deadline_total"),
        ):
            assert by_sample[(family, "toy")] == toy[json_key]

    def test_exposition_identical_with_telemetry_on(self, registry, rows):
        """Enabling a telemetry session changes neither /metrics form:
        the daemon's exposition is built from its own unconditional
        counters, never the session registry."""
        with BackgroundServer(registry, _config()) as server:
            client.predict(server.host, server.port, "toy", rows[0])
            _, _, text_off = fetch_metrics_text(server.host, server.port)
            _, json_off = client.request(
                server.host, server.port, "GET", "/metrics"
            )
            with telemetry.capture():
                _, _, text_on = fetch_metrics_text(server.host, server.port)
                _, json_on = client.request(
                    server.host, server.port, "GET", "/metrics"
                )
        assert text_on == text_off
        assert json_on == json_off


class TestStitchedTrace:
    def test_single_request_produces_one_stitched_trace(self, registry,
                                                        rows):
        """One predict → one trace id shared by the whole span path:
        HTTP parse → queue → batch → compute."""
        with telemetry.capture() as session:
            with BackgroundServer(registry, _config()) as server:
                status, doc = client.predict(
                    server.host, server.port, "toy", rows[0]
                )
        assert status == 200
        trace_id = doc["trace_id"]
        members = [s for s in session.tracer.spans
                   if s.trace_id == trace_id]
        names = {s.name for s in members}
        assert names >= {"serve.request", "serve.parse", "serve.queue",
                         "serve.batch", "serve.compute"}
        (root,) = [s for s in members if s.name == "serve.request"]
        assert root.attrs["status"] == 200
        assert root.attrs["model"] == "toy"
        assert root.duration_s is not None
        (queue,) = [s for s in members if s.name == "serve.queue"]
        assert queue.parent_id == root.span_id
        (batch,) = [s for s in members if s.name == "serve.batch"]
        (compute,) = [s for s in members if s.name == "serve.compute"]
        assert compute.parent_id == batch.span_id
        assert queue.attrs["batch_span"] == batch.span_id

    def test_concurrent_requests_get_distinct_traces(self, registry, rows):
        with telemetry.capture() as session:
            with BackgroundServer(registry, _config()) as server:
                docs = [
                    client.predict(server.host, server.port, "toy", row)[1]
                    for row in rows[:3]
                ]
        ids = [doc["trace_id"] for doc in docs]
        assert len(set(ids)) == 3
        roots = [s for s in session.tracer.spans
                 if s.name == "serve.request"]
        assert sorted(s.trace_id for s in roots) == sorted(ids)

    def test_error_response_carries_trace_id(self, scripted_entry, rows):
        registry = ModelRegistry([scripted_entry(["fail"])])
        config = _config(max_batch=1, batch_window_s=0.0)
        with telemetry.capture() as session:
            with BackgroundServer(registry, config) as server:
                status, doc = client.predict(
                    server.host, server.port, "toy", rows[0]
                )
        assert status == 500
        (root,) = [s for s in session.tracer.spans
                   if s.name == "serve.request"]
        assert doc["trace_id"] == root.trace_id
        assert root.status == "error"
        assert root.attrs["status"] == 500

    def test_no_trace_ids_without_telemetry(self, registry, rows):
        assert telemetry.active() is None
        with BackgroundServer(registry, _config()) as server:
            status, doc = client.predict(
                server.host, server.port, "toy", rows[0]
            )
        assert status == 200
        assert "trace_id" not in doc


class TestLoadReportTraceIds:
    def test_failed_trace_ids_reported(self, scripted_entry, rows):
        """The first (scripted-to-fail) request's server trace id lands
        in LoadReport.failed_trace_ids; later requests succeed."""
        registry = ModelRegistry([scripted_entry(["fail"])])
        config = _config(max_batch=1, batch_window_s=0.0)
        with telemetry.capture():
            with BackgroundServer(registry, config) as server:
                report = client.run_load(
                    server.host, server.port, "toy", rows[:4],
                    concurrency=1, requests_per_worker=4,
                )
        assert report.errors == 1
        assert report.requests == 3
        assert len(report.failed_trace_ids) == 1
        assert report.retried_trace_ids == []

    def test_failed_trace_ids_empty_without_telemetry(self, scripted_entry,
                                                      rows):
        registry = ModelRegistry([scripted_entry(["fail"])])
        config = _config(max_batch=1, batch_window_s=0.0)
        with BackgroundServer(registry, config) as server:
            report = client.run_load(
                server.host, server.port, "toy", rows[:4],
                concurrency=1, requests_per_worker=4,
            )
        assert report.errors == 1
        assert report.failed_trace_ids == []

    def test_predict_collects_retried_trace_ids(self, monkeypatch):
        """A retried 503's server trace id survives onto the final
        answer as retried_trace_ids."""
        answers = [
            (503, {"error": "shed", "retry_after_s": 0.0,
                   "trace_id": "t-1"}),
            (200, {"predictions": [1], "trace_id": "t-2"}),
        ]

        def scripted(host, port, method, path, payload=None, timeout=30.0):
            return answers.pop(0)

        monkeypatch.setattr(client, "request", scripted)
        policy = RetryPolicy(
            max_attempts=3, base_backoff_s=0.0, max_backoff_s=0.0,
            jitter=0.0, total_budget_s=1.0,
        )
        status, doc = client.predict(
            "localhost", 1, "toy", [[0.0] * 12], retry=policy
        )
        assert status == 200
        assert doc["trace_id"] == "t-2"
        assert doc["retried_trace_ids"] == ["t-1"]
        assert doc["attempts"] == 2

    def test_run_load_merges_retried_trace_ids(self, monkeypatch):
        answers = [
            (503, {"error": "shed", "retry_after_s": 0.0,
                   "trace_id": "t-1"}),
            (200, {"predictions": [1], "latency_ms": 1.0,
                   "batch_requests": 1, "trace_id": "t-2"}),
        ]

        def scripted(host, port, method, path, payload=None, timeout=30.0):
            return answers.pop(0)

        monkeypatch.setattr(client, "request", scripted)
        policy = RetryPolicy(
            max_attempts=3, base_backoff_s=0.0, max_backoff_s=0.0,
            jitter=0.0, total_budget_s=1.0,
        )
        report = client.run_load(
            "localhost", 1, "toy", [[0.0] * 12],
            concurrency=1, requests_per_worker=1, retry=policy,
        )
        assert report.retries == 1
        assert report.retried_trace_ids == ["t-1"]
        assert report.failed_trace_ids == []
