"""Unit tests for the resilience primitives (no sockets, no sleeps)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serving import (
    CircuitBreaker,
    ComputePool,
    RetryPolicy,
    ServiceTimeEstimator,
)


class FakeClock:
    """Manually-advanced monotonic clock for breaker transitions."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestServiceTimeEstimator:
    def test_starts_unknown_then_tracks(self):
        est = ServiceTimeEstimator(alpha=0.5)
        assert est.value is None
        assert est.observe(0.1) == pytest.approx(0.1)
        # EWMA: 0.1 + 0.5 * (0.3 - 0.1) = 0.2
        assert est.observe(0.3) == pytest.approx(0.2)
        assert est.samples == 2

    def test_alpha_one_tracks_last_sample(self):
        est = ServiceTimeEstimator(alpha=1.0)
        est.observe(0.5)
        est.observe(0.01)
        assert est.value == pytest.approx(0.01)

    def test_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceTimeEstimator(alpha=0.0)
        with pytest.raises(ConfigurationError):
            ServiceTimeEstimator(alpha=1.5)

    def test_budget_none_until_first_sample(self):
        est = ServiceTimeEstimator()
        assert est.budget() is None
        est.observe(0.1)
        assert est.budget() == pytest.approx(0.1)  # dev and peak at mean

    def test_budget_covers_deviation_tail(self):
        est = ServiceTimeEstimator(alpha=0.5)
        for sample in (0.1, 0.2, 0.1, 0.2, 0.1):
            est.observe(sample)
        assert est.dev > 0.0
        assert est.budget(k=2.0) >= est.value + 2.0 * est.dev - 1e-12

    def test_budget_covers_recent_peak_then_decays(self):
        est = ServiceTimeEstimator(alpha=0.25)
        for _ in range(8):
            est.observe(0.01)
        est.observe(0.2)  # one stall: the peak must cover it at once
        assert est.peak == pytest.approx(0.2)
        assert est.budget() >= 0.2 - 1e-12
        assert est.value < 0.1  # the mean barely moved
        for _ in range(50):
            est.observe(0.01)
        # with the stall long gone the peak relaxes back toward the mean
        assert est.peak < 0.05


class TestCircuitBreaker:
    def test_full_transition_sequence(self):
        """closed → open after N failures → half-open probe → closed."""
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown_s=5.0, clock=clock)
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.admit()
        breaker.record_failure()  # third consecutive: trips
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.admit()
        assert breaker.retry_after() == pytest.approx(5.0)
        clock.advance(2.0)
        assert breaker.retry_after() == pytest.approx(3.0)
        assert not breaker.admit()
        clock.advance(3.0)  # cooldown elapsed
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.admit()  # the probe
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.opens_total == 1
        assert breaker.probes_total == 1

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=1.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(1.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_failure()  # probe failed
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens_total == 2
        clock.advance(1.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=1.0,
                                 clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED, (
            "non-consecutive failures must not trip the breaker"
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown_s=-1.0)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_backoff_s=0.1, max_backoff_s=0.4,
                             jitter=0.0)
        rng = policy.rng()
        delays = [policy.backoff_s(k, rng) for k in range(4)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.4])

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(base_backoff_s=0.1, max_backoff_s=0.1,
                             jitter=0.5, seed=42)
        first = [policy.backoff_s(0, policy.rng()) for _ in range(3)]
        assert len(set(first)) == 1, "same seed must replay the schedule"
        assert 0.1 <= first[0] <= 0.15 + 1e-12
        other = policy.backoff_s(0, RetryPolicy(
            base_backoff_s=0.1, max_backoff_s=0.1, jitter=0.5, seed=43
        ).rng())
        assert other != pytest.approx(first[0]), (
            "different seeds must desynchronise"
        )

    def test_retry_after_hint_wins_when_larger(self):
        policy = RetryPolicy(base_backoff_s=0.01, max_backoff_s=0.01,
                             jitter=0.0)
        rng = policy.rng()
        assert policy.backoff_s(0, rng, retry_after_s=0.5) == \
            pytest.approx(0.5)
        assert policy.backoff_s(0, rng, retry_after_s=0.001) == \
            pytest.approx(0.01), "a smaller hint never shortens the backoff"

    def test_statuses(self):
        policy = RetryPolicy()
        assert policy.should_retry_status(429)
        assert policy.should_retry_status(503)
        assert not policy.should_retry_status(400)
        assert not policy.should_retry_status(500)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_backoff_s=0.5, max_backoff_s=0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(seed=-1)


class TestComputePool:
    def test_rebuild_replaces_executor(self):
        pool = ComputePool(workers=1)
        first = pool.executor
        assert first.submit(lambda: 7).result() == 7
        pool.rebuild()
        assert pool.executor is not first
        assert pool.rebuilds == 1
        assert pool.executor.submit(lambda: 8).result() == 8
        pool.shutdown()

    def test_adopt_wraps_external_executor(self):
        from concurrent.futures import ThreadPoolExecutor

        executor = ThreadPoolExecutor(max_workers=2)
        pool = ComputePool.adopt(executor)
        assert pool.executor is executor
        pool.rebuild()
        assert pool.executor is not executor
        assert getattr(pool.executor, "_max_workers") == 2
        pool.shutdown()

    def test_worker_validation(self):
        with pytest.raises(ConfigurationError):
            ComputePool(workers=0)

    def test_rng_helper_is_seeded(self):
        policy = RetryPolicy(seed=5)
        a, b = policy.rng(), policy.rng()
        assert a.random() == b.random()
        assert isinstance(a, np.random.Generator)
