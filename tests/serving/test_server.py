"""End-to-end daemon tests over real sockets (ephemeral ports)."""

import threading

import numpy as np
import pytest

from repro.serving import BackgroundServer, ModelRegistry, ServingConfig
from repro.serving import client
from repro.telemetry import session as telemetry

from .conftest import serial_labels


def _config(**kwargs):
    defaults = dict(port=0, models=("toy",), batch_window_s=0.005)
    defaults.update(kwargs)
    return ServingConfig(**defaults)


class TestServedIdentity:
    def test_concurrent_requests_match_serial_predict(self, registry, entry,
                                                      rows):
        """N clients hammering /predict concurrently get exactly the
        labels one serial executor pass produces."""
        results = [None] * len(rows)
        with BackgroundServer(registry, _config()) as server:
            barrier = threading.Barrier(len(rows))

            def worker(i):
                barrier.wait()
                status, doc = client.predict(
                    server.host, server.port, "toy", rows[i]
                )
                results[i] = (status, doc)

            threads = [
                threading.Thread(target=worker, args=(i,), daemon=True)
                for i in range(len(rows))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert all(status == 200 for status, _ in results)
        served = [doc["predictions"][0] for _, doc in results]
        assert served == serial_labels(entry, rows)
        # With 24 simultaneous clients and a 5 ms window, at least one
        # response must have shared its forward pass.
        assert max(doc["batch_requests"] for _, doc in results) > 1

    def test_single_request_reports_accounting_fields(self, registry, rows):
        with BackgroundServer(registry, _config()) as server:
            status, doc = client.predict(
                server.host, server.port, "toy", rows[0]
            )
        assert status == 200
        for field in ("queue_ms", "latency_ms", "mvm_launches",
                      "batch_rows", "ensemble_trials"):
            assert field in doc
        assert doc["mvm_launches"] > 0
        assert doc["ensemble_trials"] == 0


class TestBackpressureHTTP:
    def test_queue_bound_answers_429(self, slow_entry, rows):
        registry = ModelRegistry([slow_entry])
        config = _config(max_batch=1, batch_window_s=0.0, queue_depth=2)
        statuses = []
        lock = threading.Lock()
        with BackgroundServer(registry, config) as server:
            barrier = threading.Barrier(12)

            def worker(i):
                barrier.wait()
                status, _ = client.predict(
                    server.host, server.port, "toy", rows[i]
                )
                with lock:
                    statuses.append(status)

            threads = [
                threading.Thread(target=worker, args=(i,), daemon=True)
                for i in range(12)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert 429 in statuses, "queue bound never produced a 429"
        assert 200 in statuses, "every request was shed"
        assert set(statuses) <= {200, 429}


class TestRouting:
    def test_unknown_model_is_404(self, registry, rows):
        with BackgroundServer(registry, _config()) as server:
            status, doc = client.predict(
                server.host, server.port, "nope", rows[0]
            )
        assert status == 404
        assert "nope" in doc["error"]

    def test_bad_shape_is_400(self, registry):
        with BackgroundServer(registry, _config()) as server:
            status, doc = client.predict(
                server.host, server.port, "toy", np.zeros((2, 5))
            )
        assert status == 400

    def test_malformed_body_is_400(self, registry):
        with BackgroundServer(registry, _config()) as server:
            status, _ = client.request(
                server.host, server.port, "POST", "/predict",
                payload={"model": "toy"},  # no inputs
            )
            assert status == 400

    def test_wrong_method_is_405(self, registry):
        with BackgroundServer(registry, _config()) as server:
            status, _ = client.request(
                server.host, server.port, "GET", "/predict"
            )
            assert status == 405

    def test_unknown_route_is_404(self, registry):
        with BackgroundServer(registry, _config()) as server:
            status, _ = client.request(
                server.host, server.port, "GET", "/nope"
            )
            assert status == 404

    def test_healthz_models_metrics(self, registry, rows):
        with BackgroundServer(registry, _config()) as server:
            status, health = client.request(
                server.host, server.port, "GET", "/healthz"
            )
            assert (status, health["status"]) == (200, "ok")
            assert health["models"] == ["toy"]

            status, models = client.request(
                server.host, server.port, "GET", "/models"
            )
            assert status == 200
            (toy,) = models["models"]
            assert toy["input_shape"] == [12]

            client.predict(server.host, server.port, "toy", rows[0])
            status, metrics = client.request(
                server.host, server.port, "GET", "/metrics"
            )
            assert status == 200
            assert metrics["totals"]["requests"] == 1
            assert metrics["models"]["toy"]["batches"] == 1


class TestTelemetry:
    def test_serve_metrics_and_spans_recorded(self, registry, rows):
        with telemetry.capture() as session:
            with BackgroundServer(registry, _config()) as server:
                status, _ = client.predict(
                    server.host, server.port, "toy", rows[0]
                )
                assert status == 200
        snap = session.registry.snapshot()
        assert snap["counters"]["serve.requests"] == 1
        # One request batch + the end-of-stream drain barrier.
        assert snap["histograms"]["serve.batch_size"]["count"] >= 1
        assert snap["histograms"]["serve.latency_seconds"]["count"] >= 1
        names = [s.name for s in session.tracer.spans]
        assert "serve.request" in names
        assert "serve.batch" in names

    def test_rejections_counted(self, slow_entry, rows):
        registry = ModelRegistry([slow_entry])
        config = _config(max_batch=1, batch_window_s=0.0, queue_depth=1)
        with telemetry.capture() as session:
            with BackgroundServer(registry, config) as server:
                barrier = threading.Barrier(8)

                def worker(i):
                    barrier.wait()
                    client.predict(server.host, server.port, "toy", rows[i])

                threads = [
                    threading.Thread(target=worker, args=(i,), daemon=True)
                    for i in range(8)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
        snap = session.registry.snapshot()
        if snap["counters"].get("serve.rejected", 0) == 0:
            pytest.skip("scheduler drained the queue too fast to reject")
        assert snap["counters"]["serve.rejected"] >= 1


class TestLoadGenerator:
    def test_run_load_reports(self, registry, rows):
        with BackgroundServer(registry, _config()) as server:
            report = client.run_load(
                server.host, server.port, "toy", rows,
                concurrency=4, requests_per_worker=3,
            )
        assert report.requests == 12
        assert report.errors == 0
        assert report.throughput_rps > 0
        assert report.latency_p50_ms <= report.latency_p99_ms
        doc = report.to_dict()
        assert doc["concurrency"] == 4
