"""End-to-end daemon tests over real sockets (ephemeral ports)."""

import threading
import time

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.serving import (
    BackgroundServer,
    ModelRegistry,
    RetryPolicy,
    ServingConfig,
)
from repro.serving import client
from repro.telemetry import session as telemetry

from .conftest import serial_labels


def _config(**kwargs):
    defaults = dict(port=0, models=("toy",), batch_window_s=0.005)
    defaults.update(kwargs)
    return ServingConfig(**defaults)


class TestServedIdentity:
    def test_concurrent_requests_match_serial_predict(self, registry, entry,
                                                      rows):
        """N clients hammering /predict concurrently get exactly the
        labels one serial executor pass produces."""
        results = [None] * len(rows)
        with BackgroundServer(registry, _config()) as server:
            barrier = threading.Barrier(len(rows))

            def worker(i):
                barrier.wait()
                status, doc = client.predict(
                    server.host, server.port, "toy", rows[i]
                )
                results[i] = (status, doc)

            threads = [
                threading.Thread(target=worker, args=(i,), daemon=True)
                for i in range(len(rows))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert all(status == 200 for status, _ in results)
        served = [doc["predictions"][0] for _, doc in results]
        assert served == serial_labels(entry, rows)
        # With 24 simultaneous clients and a 5 ms window, at least one
        # response must have shared its forward pass.
        assert max(doc["batch_requests"] for _, doc in results) > 1

    def test_single_request_reports_accounting_fields(self, registry, rows):
        with BackgroundServer(registry, _config()) as server:
            status, doc = client.predict(
                server.host, server.port, "toy", rows[0]
            )
        assert status == 200
        for field in ("queue_ms", "latency_ms", "mvm_launches",
                      "batch_rows", "ensemble_trials"):
            assert field in doc
        assert doc["mvm_launches"] > 0
        assert doc["ensemble_trials"] == 0


class TestBackpressureHTTP:
    def test_queue_bound_answers_429(self, slow_entry, rows):
        registry = ModelRegistry([slow_entry])
        config = _config(max_batch=1, batch_window_s=0.0, queue_depth=2)
        statuses = []
        lock = threading.Lock()
        with BackgroundServer(registry, config) as server:
            barrier = threading.Barrier(12)

            def worker(i):
                barrier.wait()
                status, _ = client.predict(
                    server.host, server.port, "toy", rows[i]
                )
                with lock:
                    statuses.append(status)

            threads = [
                threading.Thread(target=worker, args=(i,), daemon=True)
                for i in range(12)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert 429 in statuses, "queue bound never produced a 429"
        assert 200 in statuses, "every request was shed"
        assert set(statuses) <= {200, 429}


class TestRouting:
    def test_unknown_model_is_404(self, registry, rows):
        with BackgroundServer(registry, _config()) as server:
            status, doc = client.predict(
                server.host, server.port, "nope", rows[0]
            )
        assert status == 404
        assert "nope" in doc["error"]

    def test_bad_shape_is_400(self, registry):
        with BackgroundServer(registry, _config()) as server:
            status, doc = client.predict(
                server.host, server.port, "toy", np.zeros((2, 5))
            )
        assert status == 400

    def test_malformed_body_is_400(self, registry):
        with BackgroundServer(registry, _config()) as server:
            status, _ = client.request(
                server.host, server.port, "POST", "/predict",
                payload={"model": "toy"},  # no inputs
            )
            assert status == 400

    def test_wrong_method_is_405(self, registry):
        with BackgroundServer(registry, _config()) as server:
            status, _ = client.request(
                server.host, server.port, "GET", "/predict"
            )
            assert status == 405

    def test_unknown_route_is_404(self, registry):
        with BackgroundServer(registry, _config()) as server:
            status, _ = client.request(
                server.host, server.port, "GET", "/nope"
            )
            assert status == 404

    def test_healthz_models_metrics(self, registry, rows):
        with BackgroundServer(registry, _config()) as server:
            status, health = client.request(
                server.host, server.port, "GET", "/healthz"
            )
            assert (status, health["status"]) == (200, "ok")
            assert health["models"] == ["toy"]

            status, models = client.request(
                server.host, server.port, "GET", "/models"
            )
            assert status == 200
            (toy,) = models["models"]
            assert toy["input_shape"] == [12]

            client.predict(server.host, server.port, "toy", rows[0])
            status, metrics = client.request(
                server.host, server.port, "GET", "/metrics"
            )
            assert status == 200
            assert metrics["totals"]["requests"] == 1
            assert metrics["models"]["toy"]["batches"] == 1


class TestTelemetry:
    def test_serve_metrics_and_spans_recorded(self, registry, rows):
        with telemetry.capture() as session:
            with BackgroundServer(registry, _config()) as server:
                status, _ = client.predict(
                    server.host, server.port, "toy", rows[0]
                )
                assert status == 200
        snap = session.registry.snapshot()
        assert snap["counters"]["serve.requests"] == 1
        # One request batch + the end-of-stream drain barrier.
        assert snap["histograms"]["serve.batch_size"]["count"] >= 1
        assert snap["histograms"]["serve.latency_seconds"]["count"] >= 1
        names = [s.name for s in session.tracer.spans]
        assert "serve.request" in names
        assert "serve.batch" in names

    def test_rejections_counted(self, slow_entry, rows):
        registry = ModelRegistry([slow_entry])
        config = _config(max_batch=1, batch_window_s=0.0, queue_depth=1)
        with telemetry.capture() as session:
            with BackgroundServer(registry, config) as server:
                barrier = threading.Barrier(8)

                def worker(i):
                    barrier.wait()
                    client.predict(server.host, server.port, "toy", rows[i])

                threads = [
                    threading.Thread(target=worker, args=(i,), daemon=True)
                    for i in range(8)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
        snap = session.registry.snapshot()
        if snap["counters"].get("serve.rejected", 0) == 0:
            pytest.skip("scheduler drained the queue too fast to reject")
        assert snap["counters"]["serve.rejected"] >= 1


class TestDeadlineHTTP:
    def test_shed_is_503_with_retry_after_not_429(self, slow_entry, rows):
        """Once the EWMA is calibrated, an impossible deadline is shed
        with 503 + Retry-After — a different answer than queue-full."""
        registry = ModelRegistry([slow_entry])
        config = _config(max_batch=1, batch_window_s=0.0)
        with BackgroundServer(registry, config) as server:
            status, _ = client.predict(  # calibrates the EWMA (~50 ms)
                server.host, server.port, "toy", rows[0]
            )
            assert status == 200
            status, doc = client.predict(
                server.host, server.port, "toy", rows[1], deadline_ms=1.0
            )
            assert status == 503
            assert "shed at admission" in doc["error"]
            assert doc["retry_after_s"] > 0
            # The Retry-After *header* round-trips too (integer seconds,
            # rounded up per RFC 9110).
            assert doc["retry_after_hint_s"] >= 1.0
            _, metrics = client.request(
                server.host, server.port, "GET", "/metrics"
            )
        assert metrics["totals"]["shed_deadline"] == 1
        assert metrics["totals"]["rejected"] == 0, (
            "a deadline shed must not be counted as a 429 rejection"
        )

    def test_generous_deadline_is_served(self, registry, rows):
        with BackgroundServer(registry, _config()) as server:
            status, doc = client.predict(
                server.host, server.port, "toy", rows[0], deadline_ms=10_000
            )
        assert status == 200
        assert "predictions" in doc

    def test_invalid_deadline_is_400(self, registry, rows):
        with BackgroundServer(registry, _config()) as server:
            status, doc = client.predict(
                server.host, server.port, "toy", rows[0], deadline_ms=-5
            )
            assert status == 400
            assert "deadline_ms" in doc["error"]
            status, _ = client.request(
                server.host, server.port, "POST", "/predict",
                payload={"model": "toy",
                         "inputs": rows[0].tolist(),
                         "deadline_ms": "soon"},
            )
            assert status == 400

    def test_retrying_client_reports_attempts(self, slow_entry, rows):
        """An always-shed deadline is retried under the policy and the
        final answer carries the attempt count."""
        registry = ModelRegistry([slow_entry])
        config = _config(max_batch=1, batch_window_s=0.0)
        policy = RetryPolicy(max_attempts=3, base_backoff_s=0.001,
                             max_backoff_s=0.002, jitter=0.0,
                             total_budget_s=30.0, seed=7)
        with BackgroundServer(registry, config) as server:
            client.predict(server.host, server.port, "toy", rows[0])
            status, doc = client.predict(
                server.host, server.port, "toy", rows[1],
                deadline_ms=1.0, retry=policy,
            )
        assert status == 503
        assert doc["attempts"] == 3


class TestFailedModelHTTP:
    def test_failed_model_is_503_while_others_serve(self, entry, rows):
        """A model whose load failed answers 503 per-request; the rest
        of the registry keeps serving and /healthz reports it."""
        registry = ModelRegistry(
            [entry], failed={"broken": "ArtifactError: checksum mismatch"}
        )
        with BackgroundServer(registry, _config()) as server:
            status, doc = client.predict(
                server.host, server.port, "broken", rows[0]
            )
            assert status == 503
            assert "failed to load" in doc["error"]
            status, _ = client.predict(
                server.host, server.port, "toy", rows[0]
            )
            assert status == 200
            _, health = client.request(
                server.host, server.port, "GET", "/healthz"
            )
            assert "broken" in health["failed_models"]
            _, metrics = client.request(
                server.host, server.port, "GET", "/metrics"
            )
            assert "broken" in metrics["failed_models"]

    def test_unknown_model_is_still_404(self, entry, rows):
        registry = ModelRegistry([entry], failed={"broken": "boom"})
        with BackgroundServer(registry, _config()) as server:
            status, _ = client.predict(
                server.host, server.port, "never-configured", rows[0]
            )
        assert status == 404


class TestDrainAbandon:
    def test_drain_timeout_answers_stragglers_with_503(
        self, scripted_entry, rows
    ):
        """When the drain grace period expires, queued and in-flight
        requests get an immediate 503 — no client is left hanging."""
        stalling = scripted_entry([0.25] * 8)
        registry = ModelRegistry([stalling])
        config = _config(max_batch=1, batch_window_s=0.0,
                         drain_timeout_s=0.05)
        results = []
        lock = threading.Lock()

        def worker(server, i):
            status, doc = client.predict(
                server.host, server.port, "toy", rows[i], timeout=10.0
            )
            with lock:
                results.append((status, doc))

        with telemetry.capture() as session:
            server = BackgroundServer(registry, config).start()
            threads = [
                threading.Thread(target=worker, args=(server, i),
                                 daemon=True)
                for i in range(4)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.1)  # first request in-flight, rest queued
            server.stop()
            for thread in threads:
                thread.join(timeout=10.0)
                assert not thread.is_alive(), "a request hung at shutdown"

        assert len(results) == 4, "every request must be answered"
        abandoned = [doc for status, doc in results if status == 503]
        assert abandoned, "drain timeout never abandoned a request"
        assert any("abandoned at shutdown" in doc["error"]
                   for doc in abandoned)
        assert server.daemon.drain_abandoned_total >= 1
        snap = session.registry.snapshot()
        assert snap["counters"]["serve.drain.abandoned"] >= 1

    def test_graceful_drain_still_answers_everything(self, registry, rows):
        """With a sane grace period the drain path is unchanged: every
        accepted request completes with 200."""
        results = []
        lock = threading.Lock()

        def worker(server, i):
            status, _ = client.predict(
                server.host, server.port, "toy", rows[i], timeout=10.0
            )
            with lock:
                results.append(status)

        server = BackgroundServer(registry, _config()).start()
        threads = [
            threading.Thread(target=worker, args=(server, i), daemon=True)
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        server.stop()
        assert results == [200] * 4
        assert server.daemon.drain_abandoned_total == 0


class TestBackgroundServerErrors:
    def test_stop_surfaces_loop_death(self, registry):
        """A daemon that crashed mid-run must not look like a clean
        stop (the stop() re-check of self._error)."""
        server = BackgroundServer(registry, _config()).start()

        async def boom():
            raise RuntimeError("loop exploded")

        server.daemon.shutdown = boom
        with pytest.raises(ExecutionError, match="died while running"):
            server.stop()


class TestLoadGenerator:
    def test_run_load_reports(self, registry, rows):
        with BackgroundServer(registry, _config()) as server:
            report = client.run_load(
                server.host, server.port, "toy", rows,
                concurrency=4, requests_per_worker=3,
            )
        assert report.requests == 12
        assert report.errors == 0
        assert report.throughput_rps > 0
        assert report.latency_p50_ms <= report.latency_p99_ms
        doc = report.to_dict()
        assert doc["concurrency"] == 4
