"""The resilient artifact store: atomicity, integrity, LRU, locking."""

import json
import os

import numpy as np
import pytest

from repro.errors import ArtifactError
from repro.store import (
    ArtifactStore,
    FileLock,
    MemoryLRU,
    atomic_write_bytes,
    default_model_cache_dir,
    get_store,
    sha256_bytes,
    sha256_file,
    spec_hash,
)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "store"))


class TestAtomicWrite:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "a" / "b.bin")
        atomic_write_bytes(path, b"payload")
        with open(path, "rb") as fh:
            assert fh.read() == b"payload"

    def test_replaces_existing(self, tmp_path):
        path = str(tmp_path / "x.bin")
        atomic_write_bytes(path, b"old")
        atomic_write_bytes(path, b"new")
        with open(path, "rb") as fh:
            assert fh.read() == b"new"

    def test_no_temp_litter(self, tmp_path):
        atomic_write_bytes(str(tmp_path / "x.bin"), b"data")
        assert os.listdir(tmp_path) == ["x.bin"]

    def test_sha_helpers_agree(self, tmp_path):
        path = str(tmp_path / "x.bin")
        atomic_write_bytes(path, b"data")
        assert sha256_file(path) == sha256_bytes(b"data")


class TestSpecHash:
    def test_deterministic_and_order_insensitive(self):
        assert spec_hash({"a": 1, "b": (2, 3)}) == spec_hash({"b": (2, 3), "a": 1})

    def test_distinguishes_specs(self):
        assert spec_hash({"epochs": 10}) != spec_hash({"epochs": 11})


class TestMemoryLRU:
    def test_evicts_least_recently_used(self):
        lru = MemoryLRU(max_entries=2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == (True, 1)  # refresh a
        lru.put("c", 3)  # evicts b
        assert "b" not in lru
        assert "a" in lru and "c" in lru

    def test_zero_capacity_disables(self):
        lru = MemoryLRU(max_entries=0)
        lru.put("a", 1)
        assert lru.get("a") == (False, None)


class TestFileLock:
    def test_acquire_release(self, tmp_path):
        lock = FileLock(str(tmp_path / "k.lock"))
        with lock:
            assert lock.locked
        assert not lock.locked

    def test_contention_times_out(self, tmp_path):
        path = str(tmp_path / "k.lock")
        with FileLock(path):
            with pytest.raises(ArtifactError):
                FileLock(path, timeout=0.2, poll=0.05).acquire()


class TestPutGet:
    def test_bytes_round_trip_with_manifest(self, store):
        store.put_bytes("blob.bin", b"\x00\x01", spec_hash="abc")
        manifest_path = store.path_for("blob.bin") + ".manifest.json"
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        assert manifest["sha256"] == sha256_bytes(b"\x00\x01")
        assert manifest["size"] == 2
        assert manifest["spec_hash"] == "abc"
        assert store.get_bytes("blob.bin", spec_hash="abc") == b"\x00\x01"

    def test_npz_round_trip(self, store):
        arrays = {"w": np.arange(6.0).reshape(2, 3), "b": np.zeros(3)}
        store.put_npz("m.npz", arrays)
        out = store.get_npz("m.npz")
        assert set(out) == {"w", "b"}
        assert np.array_equal(out["w"], arrays["w"])

    def test_json_round_trip(self, store):
        store.put_json("meta.json", {"accuracy": 0.9})
        assert store.get_json("meta.json") == {"accuracy": 0.9}

    def test_absent_is_miss(self, store):
        assert store.get_bytes("nope.bin") is None
        assert store.stats.misses == 1
        assert store.stats.corruptions == 0

    def test_counters(self, store):
        store.put_json("k.json", 1)
        store.get_json("k.json")
        store.get_json("absent.json")
        assert store.stats.writes == 1
        assert store.stats.hits == 1
        assert store.stats.misses == 1

    def test_memory_layer_serves_repeats(self, store):
        store.put_bytes("k.bin", b"v")
        store.get_bytes("k.bin")
        store.get_bytes("k.bin")
        assert store.stats.memory_hits == 2  # put pre-populates memory

    def test_fetch_json_computes_once(self, store):
        calls = []
        for _ in range(2):
            value = store.fetch_json("f.json", lambda: calls.append(1) or 42)
            assert value == 42
        assert calls == [1]

    def test_invalid_keys_rejected(self, store):
        for key in ["", "/abs", "../escape", "a/../b", "x.lock",
                    "y.manifest.json", "z.corrupt"]:
            with pytest.raises(ArtifactError):
                store.path_for(key)

    def test_nested_keys(self, store):
        store.put_json("sub/dir/k.json", [1, 2])
        assert store.get_json("sub/dir/k.json") == [1, 2]
        assert "sub/dir/k.json" in store.keys()


class TestIntegrity:
    def test_stale_spec_hash_is_miss_not_quarantine(self, store):
        store.put_json("k.json", 1, spec_hash="old")
        fresh = ArtifactStore(store.root)  # bypass the memory layer
        assert fresh.get_json("k.json", spec_hash="new") is None
        assert fresh.stats.stale == 1
        assert fresh.stats.corruptions == 0
        assert os.path.exists(store.path_for("k.json"))  # left for overwrite

    def test_missing_manifest_quarantined(self, store):
        path = store.path_for("legacy.npz")
        os.makedirs(store.root, exist_ok=True)
        with open(path, "wb") as fh:
            fh.write(b"PK\x03\x04 truncated")
        assert store.get_npz("legacy.npz") is None
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")
        assert store.stats.corruptions == 1

    def test_payload_hash_mismatch_quarantined(self, store):
        store.put_bytes("k.bin", b"good")
        with open(store.path_for("k.bin"), "wb") as fh:
            fh.write(b"evil")
        fresh = ArtifactStore(store.root)
        assert fresh.get_bytes("k.bin") is None
        assert fresh.stats.corruptions == 1
        assert os.path.exists(store.path_for("k.bin") + ".corrupt")

    def test_truncated_payload_quarantined(self, store):
        arrays = {"w": np.arange(100.0)}
        store.put_npz("m.npz", arrays)
        path = store.path_for("m.npz")
        size = os.path.getsize(path)
        with open(path, "rb+") as fh:
            fh.truncate(size // 2)
        fresh = ArtifactStore(store.root)
        assert fresh.get_npz("m.npz") is None
        assert fresh.stats.corruptions == 1

    def test_garbled_manifest_quarantined(self, store):
        store.put_bytes("k.bin", b"v")
        with open(store.path_for("k.bin") + ".manifest.json", "w") as fh:
            fh.write("{not json")
        fresh = ArtifactStore(store.root)
        assert fresh.get_bytes("k.bin") is None
        assert fresh.stats.corruptions == 1

    def test_rewrite_after_quarantine_recovers(self, store):
        path = store.path_for("k.json")
        os.makedirs(store.root, exist_ok=True)
        with open(path, "w") as fh:
            fh.write("garbage")
        assert store.get_json("k.json") is None
        store.put_json("k.json", {"v": 1})
        fresh = ArtifactStore(store.root)
        assert fresh.get_json("k.json") == {"v": 1}
        assert fresh.stats.hits == 1


class TestMaintenance:
    def test_entries_statuses(self, store):
        store.put_json("ok.json", 1)
        os.makedirs(store.root, exist_ok=True)
        with open(store.path_for("legacy.bin"), "wb") as fh:
            fh.write(b"x")
        by_key = {e.key: e.status for e in store.entries()}
        assert by_key["ok.json"] == "ok"
        assert by_key["legacy.bin"] == "no-manifest"

    def test_verify_scrubs_bad_entries(self, store):
        store.put_json("ok.json", 1)
        os.makedirs(store.root, exist_ok=True)
        with open(store.path_for("bad.npz"), "wb") as fh:
            fh.write(b"junk")
        bad = store.verify()
        assert bad == ["bad.npz"]
        assert os.path.exists(store.path_for("bad.npz") + ".corrupt")
        statuses = {e.key: e.status for e in store.entries()}
        assert statuses["ok.json"] == "ok"

    def test_clear(self, store):
        store.put_json("a.json", 1)
        store.put_json("b.json", 2)
        assert store.clear() > 0
        assert store.keys() == []
        fresh = ArtifactStore(store.root)
        assert fresh.get_json("a.json") is None


class TestDefaults:
    def test_default_cache_dir_is_absolute(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        path = default_model_cache_dir()
        assert os.path.isabs(path)
        assert ".." not in path
        assert path.endswith(os.path.join(".cache", "models"))

    def test_env_override_normalised(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path) + os.sep)
        assert default_model_cache_dir() == str(tmp_path)

    def test_get_store_memoised_per_root(self, tmp_path):
        a = get_store(str(tmp_path / "r"))
        b = get_store(str(tmp_path / "r"))
        c = get_store(str(tmp_path / "other"))
        assert a is b
        assert a is not c
