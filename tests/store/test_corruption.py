"""Corruption injection: the model cache must heal itself, not crash.

Regression suite for the seed failure: 17 truncated ``.npz`` files in
``.cache/models`` made every fig7/CLI run die with
``zipfile.BadZipFile``.  Each scenario here plants a differently-broken
cache entry and asserts the store quarantines it, retrains, rewrites
atomically, and serves the second run from cache.
"""

import json
import os

import numpy as np
import pytest

from repro.experiments.networks import (
    NETWORK_SPECS,
    get_benchmark_networks,
    model_cache_key,
    model_spec_hash,
)
from repro.store import get_store

SPEC = NETWORK_SPECS["mlp-1"]
N = 200


@pytest.fixture
def cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
    return str(tmp_path)


def _key() -> str:
    return model_cache_key(SPEC, N, 0)


def _train_once():
    return get_benchmark_networks(keys=["mlp-1"], n_samples=N)[0]


def _plant(cache: str, name: str, data: bytes) -> str:
    path = os.path.join(cache, name)
    with open(path, "wb") as fh:
        fh.write(data)
    return path


class TestSeedStateRegression:
    """Reproduce the exact seed failure mode: manifest-less truncated
    archives + unparseable sidecars sitting where the cache looks."""

    def test_corrupt_seed_cache_recovers_and_second_run_hits(self, cache):
        npz_path = _plant(cache, _key() + ".npz",
                          b"PK\x03\x04" + b"\x00" * 64)  # truncated zip
        _plant(cache, _key() + ".json", b'{"software_accuracy": ')

        net = _train_once()  # must not raise BadZipFile
        assert net.software_accuracy > 0.5

        # quarantined, not deleted — forensics stay available
        assert os.path.exists(npz_path + ".corrupt")
        store = get_store(cache)
        assert store.stats.corruptions >= 1

        # re-persisted with a valid manifest
        assert os.path.exists(npz_path + ".manifest.json")
        with open(npz_path + ".manifest.json") as fh:
            assert "sha256" in json.load(fh)

        # second run is served from cache: no new writes, hits recorded
        hits0, writes0 = store.stats.hits, store.stats.writes
        net2 = _train_once()
        assert store.stats.hits > hits0
        assert store.stats.writes == writes0
        assert net2.software_accuracy == net.software_accuracy
        assert np.allclose(net.model.layers[0].weight.value,
                           net2.model.layers[0].weight.value)

    def test_cli_fig7_survives_corrupt_cache(self, cache, capsys):
        from repro.cli import main

        _plant(cache, "mlp-1-n300-s0-e10.npz", b"not a zip at all")
        code = main([
            "fig7", "--networks", "mlp-1", "--sigmas", "0",
            "--trials", "1", "--samples", "300", "--eval-samples", "50",
        ])
        assert code == 0
        assert "MLP-1" in capsys.readouterr().out
        assert os.path.exists(
            os.path.join(cache, "mlp-1-n300-s0-e10.npz.corrupt")
        )


class TestInjectedCorruption:
    def test_truncated_mid_archive(self, cache):
        first = _train_once()  # writes a valid entry
        path = os.path.join(cache, _key() + ".npz")
        size = os.path.getsize(path)
        with open(path, "rb+") as fh:
            fh.truncate(size // 2)
        get_store(cache).drop_memory()  # corruption happened "behind" us
        fresh_stats_before = get_store(cache).stats.corruptions
        second = _train_once()  # hash check catches it -> retrain
        assert get_store(cache).stats.corruptions == fresh_stats_before + 1
        assert os.path.exists(path + ".corrupt")
        assert second.software_accuracy == first.software_accuracy

    def test_garbage_json_sidecar(self, cache):
        _train_once()
        json_path = os.path.join(cache, _key() + ".json")
        with open(json_path, "wb") as fh:
            fh.write(b"\xff\xfe garbage")
        get_store(cache).drop_memory()
        net = _train_once()  # json integrity fails -> retrain
        assert net.software_accuracy > 0.5
        with open(json_path) as fh:  # rewritten, valid again
            assert "software_accuracy" in json.load(fh)

    def test_json_sidecar_missing_field(self, cache):
        _train_once()
        store = get_store(cache)
        fingerprint = model_spec_hash(SPEC, SPEC.build())
        store.put_json(_key() + ".json", {"wrong": 1}, spec_hash=fingerprint)
        net = _train_once()  # sidecar quarantined -> retrain
        assert net.software_accuracy > 0.5
        meta = store.get_json(_key() + ".json", spec_hash=fingerprint)
        assert isinstance(meta["software_accuracy"], float)

    def test_shape_mismatched_state_dict(self, cache):
        store = get_store(cache)
        fingerprint = model_spec_hash(SPEC, SPEC.build())
        # valid manifest + hash, but tensors from some other network
        store.put_npz(_key() + ".npz", {"000:w": np.zeros((3, 3))},
                      spec_hash=fingerprint)
        store.put_json(_key() + ".json", {"software_accuracy": 0.99},
                       spec_hash=fingerprint)
        net = _train_once()  # load_state_dict fails -> quarantine + retrain
        assert net.software_accuracy != pytest.approx(0.99)
        assert os.path.exists(os.path.join(cache, _key() + ".npz.corrupt"))

    def test_stale_spec_hash_retrains_without_quarantine(self, cache):
        store = get_store(cache)
        store.put_npz(_key() + ".npz", {"000:w": np.zeros((784, 10))},
                      spec_hash="0123456789abcdef")
        corruptions = store.stats.corruptions
        net = _train_once()  # stale -> miss -> retrain + overwrite
        assert net.software_accuracy > 0.5
        assert store.stats.corruptions == corruptions
        assert not os.path.exists(os.path.join(cache, _key() + ".npz.corrupt"))

    def test_cache_disabled_ignores_store(self, cache):
        _plant(cache, _key() + ".npz", b"junk")
        net = get_benchmark_networks(keys=["mlp-1"], n_samples=N,
                                     cache=False)[0]
        assert net.software_accuracy > 0.5
        # untouched: nothing read it, nothing quarantined it
        assert os.path.exists(os.path.join(cache, _key() + ".npz"))


class TestUnusableCacheRoot:
    def test_training_survives_cache_root_that_is_a_file(
        self, tmp_path, monkeypatch
    ):
        root = tmp_path / "not-a-dir"
        root.write_text("occupied")
        monkeypatch.setenv("REPRO_CACHE", str(root))
        net = get_benchmark_networks(keys=["mlp-1"], n_samples=N)[0]
        assert net.software_accuracy > 0.5  # result survives, cache doesn't
        assert root.read_text() == "occupied"  # nothing clobbered it
