"""FileLock error classification: contention polls, I/O failures raise."""

import errno

import pytest

from repro.errors import ArtifactError
from repro.store import locking
from repro.store.locking import FileLock

pytestmark = pytest.mark.skipif(
    locking.fcntl is None, reason="flock-based locking needs POSIX fcntl"
)


def _flock_raising(code):
    def fake_flock(fd, flags):
        raise OSError(code, "injected failure")

    return fake_flock


class TestContentionClassification:
    def test_contention_times_out_as_artifact_error(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setattr(
            locking.fcntl, "flock", _flock_raising(errno.EWOULDBLOCK)
        )
        lock = FileLock(str(tmp_path / "k.lock"), timeout=0.1, poll=0.02)
        with pytest.raises(ArtifactError, match="timed out"):
            lock.acquire()
        assert not lock.locked

    @pytest.mark.parametrize("code", [errno.EBADF, errno.ENOLCK, errno.EIO])
    def test_real_io_failure_raises_immediately(self, tmp_path, monkeypatch,
                                                code):
        """EBADF/ENOLCK/EIO must surface at once — before the fix they
        were swallowed, spun for the full timeout, and got misreported
        as lock contention."""
        monkeypatch.setattr(locking.fcntl, "flock", _flock_raising(code))
        lock = FileLock(str(tmp_path / "k.lock"), timeout=30.0, poll=0.02)
        deadline_clock = locking.monotonic()
        with pytest.raises(OSError) as excinfo:
            lock.acquire()
        assert excinfo.value.errno == code
        # It raised without burning the 30 s timeout polling.
        assert locking.monotonic() - deadline_clock < 5.0
        # The handle was closed on the way out.
        assert not lock.locked

    def test_plain_acquire_release_still_works(self, tmp_path):
        lock = FileLock(str(tmp_path / "k.lock"))
        with lock:
            assert lock.locked
        assert not lock.locked
