"""Telemetry subsystem tests: metrics, tracer, session, report CLI."""
