"""Trace identity: deterministic ids, ambient propagation, RNG safety."""

import numpy as np

from repro.telemetry import context
from repro.telemetry import session as telemetry
from repro.telemetry.context import (
    TraceContext,
    TraceIdAllocator,
    derive_trace_seed,
)


class TestAllocator:
    def test_id_format_and_monotonicity(self):
        alloc = TraceIdAllocator(seed=0xDEADBEEF)
        first, second = alloc.new_trace_id(), alloc.new_trace_id()
        assert first == "deadbeef-000001"
        assert second == "deadbeef-000002"
        assert alloc.issued == 2

    def test_same_seed_same_sequence(self):
        a = TraceIdAllocator(seed=42)
        b = TraceIdAllocator(seed=42)
        assert [a.new_trace_id() for _ in range(5)] == [
            b.new_trace_id() for _ in range(5)
        ]

    def test_seed_masked_to_32_bits(self):
        alloc = TraceIdAllocator(seed=(1 << 40) | 7)
        assert alloc.new_trace_id().startswith("00000007-")

    def test_derive_trace_seed_is_stable_and_command_scoped(self):
        assert derive_trace_seed("fig7", 0) == derive_trace_seed("fig7", 0)
        assert derive_trace_seed("fig7", 0) != derive_trace_seed("serve", 0)
        assert derive_trace_seed("fig7", 0) != derive_trace_seed("fig7", 1)

    def test_session_mints_reproducible_ids(self):
        with telemetry.capture(command="serve", seed=3) as a:
            ids_a = [a.new_trace_id() for _ in range(3)]
        with telemetry.capture(command="serve", seed=3) as b:
            ids_b = [b.new_trace_id() for _ in range(3)]
        assert ids_a == ids_b


class TestAmbientContext:
    def test_default_is_none(self):
        assert context.current() is None
        assert context.current_trace_id() is None

    def test_attach_detach_restores(self):
        token = context.attach(TraceContext(trace_id="abc-1"))
        try:
            assert context.current_trace_id() == "abc-1"
        finally:
            context.detach(token)
        assert context.current_trace_id() is None

    def test_trace_scope_with_explicit_id(self):
        with context.trace_scope("cafe-2") as ctx:
            assert ctx.trace_id == "cafe-2"
            assert context.current_trace_id() == "cafe-2"
        assert context.current_trace_id() is None

    def test_trace_scope_disabled_yields_none(self):
        assert telemetry.active() is None
        with context.trace_scope() as ctx:
            assert ctx is None
            assert context.current_trace_id() is None

    def test_trace_scope_mints_from_active_session(self):
        with telemetry.capture(command="serve", seed=0):
            with context.trace_scope() as ctx:
                assert ctx is not None
                assert ctx.trace_id.endswith("-000001")

    def test_nested_scopes_restore_outer(self):
        with context.trace_scope("outer-1"):
            with context.trace_scope("inner-2"):
                assert context.current_trace_id() == "inner-2"
            assert context.current_trace_id() == "outer-1"

    def test_round_trip_dict(self):
        ctx = TraceContext(trace_id="abc-1")
        assert TraceContext.from_dict(ctx.to_dict()) == ctx


class TestRngIsolation:
    def test_minting_ids_never_perturbs_seeded_streams(self):
        """Trace ids come from a counter, not any RNG: a seeded stream
        drawn while ids are being minted matches one drawn without."""
        baseline = np.random.default_rng(123).random(8)
        with telemetry.capture(command="serve", seed=123) as session:
            rng = np.random.default_rng(123)
            drawn = []
            for _ in range(8):
                session.new_trace_id()
                with context.trace_scope():
                    drawn.append(rng.random())
        np.testing.assert_array_equal(baseline, np.array(drawn))
