"""Structured logging: JSON lines, trace correlation, stdlib compat."""

import io
import json
import logging

from repro.telemetry import context
from repro.telemetry import session as telemetry
from repro.telemetry.logging import (
    JsonLineFormatter,
    StructuredLogger,
    get_logger,
)


def capture_logger(name):
    """A structured logger plus a buffer receiving its JSON lines."""
    log = get_logger(name)
    buffer = io.StringIO()
    handler = logging.StreamHandler(buffer)
    handler.setFormatter(JsonLineFormatter())
    stdlib = log._logger
    stdlib.addHandler(handler)
    stdlib.setLevel(logging.DEBUG)
    stdlib.propagate = False
    return log, buffer, stdlib, handler


def last_line(buffer):
    return json.loads(buffer.getvalue().strip().splitlines()[-1])


class TestJsonLines:
    def test_record_is_one_json_object(self):
        log, buffer, stdlib, handler = capture_logger("unit.jsonline")
        try:
            log.warning("disk %s is %d%% full", "sda", 93)
        finally:
            stdlib.removeHandler(handler)
        doc = last_line(buffer)
        assert doc["message"] == "disk sda is 93% full"
        assert doc["level"] == "warning"
        assert doc["logger"] == "repro.unit.jsonline"
        assert isinstance(doc["ts"], float)

    def test_keyword_fields_become_structured_attributes(self):
        log, buffer, stdlib, handler = capture_logger("unit.fields")
        try:
            log.warning("quarantined", key="a/b.npz", reason="sha mismatch")
        finally:
            stdlib.removeHandler(handler)
        doc = last_line(buffer)
        assert doc["fields"] == {"key": "a/b.npz", "reason": "sha mismatch"}

    def test_exception_carries_traceback(self):
        log, buffer, stdlib, handler = capture_logger("unit.exc")
        try:
            try:
                raise RuntimeError("boom")
            except RuntimeError:
                log.exception("compute failed")
        finally:
            stdlib.removeHandler(handler)
        doc = last_line(buffer)
        assert "RuntimeError: boom" in doc["exc"]
        assert doc["level"] == "error"


class TestTraceCorrelation:
    def test_trace_id_injected_from_ambient_scope(self):
        log, buffer, stdlib, handler = capture_logger("unit.trace")
        try:
            with context.trace_scope("feed-1"):
                log.warning("inside the trace")
            log.warning("outside the trace")
        finally:
            stdlib.removeHandler(handler)
        inside, outside = [
            json.loads(line)
            for line in buffer.getvalue().strip().splitlines()
        ]
        assert inside["trace_id"] == "feed-1"
        assert "trace_id" not in outside

    def test_span_id_injected_from_open_span(self):
        log, buffer, stdlib, handler = capture_logger("unit.span")
        try:
            with telemetry.capture() as session:
                with session.span("work.step"):
                    log.warning("mid-span")
        finally:
            stdlib.removeHandler(handler)
        doc = last_line(buffer)
        assert doc["span_id"] == 0

    def test_log_records_counted_when_session_active(self):
        log, buffer, stdlib, handler = capture_logger("unit.count")
        try:
            with telemetry.capture() as session:
                log.warning("one")
                log.warning("two")
                log.error("three")
        finally:
            stdlib.removeHandler(handler)
        counters = session.registry.snapshot()["counters"]
        assert counters["log.records.warning"] == 2
        assert counters["log.records.error"] == 1


class TestGetLogger:
    def test_names_prefixed_under_repro(self):
        assert get_logger("store").name == "repro.store"
        assert get_logger("repro.store").name == "repro.store"
        assert get_logger().name == "repro"

    def test_returns_structured_logger(self):
        assert isinstance(get_logger("x"), StructuredLogger)

    def test_root_handler_attached_once(self):
        get_logger("a")
        get_logger("b")
        root = logging.getLogger("repro")  # lint: exempt OBS001 asserting on the adapter's own wiring
        assert len(root.handlers) == 1
        assert root.propagate is False
