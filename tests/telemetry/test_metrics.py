"""MetricsRegistry: counters, gauges, and reservoir histograms."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.telemetry import Counter, Gauge, MetricsRegistry, StreamingHistogram


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_negative_delta_retracts(self):
        # The store uses this to un-count a hit whose payload failed
        # to decode.
        c = Counter("hits")
        c.inc(3)
        c.inc(-1)
        assert c.value == 2


class TestGauge:
    def test_last_value_wins(self):
        g = Gauge("util")
        assert g.value is None
        g.set(0.25)
        g.set(0.75)
        assert g.value == pytest.approx(0.75)


class TestStreamingHistogram:
    def test_quantiles_exact_below_reservoir_size(self):
        """While every sample is retained, quantiles must match the
        numpy reference on the full observation sequence."""
        rng = np.random.default_rng(42)
        values = rng.normal(10.0, 3.0, size=500)
        h = StreamingHistogram("lat", reservoir_size=1024, seed=7)
        for v in values:
            h.observe(v)
        for q in (0.5, 0.95, 0.99):
            assert h.quantile(q) == pytest.approx(
                float(np.percentile(values, 100 * q))
            )
        snap = h.snapshot()
        assert snap["count"] == 500
        assert snap["mean"] == pytest.approx(float(values.mean()))
        assert snap["min"] == pytest.approx(float(values.min()))
        assert snap["max"] == pytest.approx(float(values.max()))
        assert snap["p50"] == pytest.approx(float(np.percentile(values, 50)))

    def test_degrades_gracefully_beyond_reservoir(self):
        h = StreamingHistogram("lat", reservoir_size=64, seed=3)
        values = np.linspace(0.0, 1.0, 5000)
        for v in values:
            h.observe(float(v))
        assert h.count == 5000
        assert h.min == pytest.approx(0.0)
        assert h.max == pytest.approx(1.0)
        assert h.mean == pytest.approx(0.5)
        # Quantile estimates come from a uniform sample of a uniform
        # sequence: loose sanity bounds only.
        assert 0.3 < h.quantile(0.5) < 0.7
        assert h.quantile(0.95) > h.quantile(0.05)

    def test_same_seed_same_snapshot(self):
        """The reservoir is a deterministic function of (seed, sequence)."""
        values = np.random.default_rng(0).random(300)

        def build():
            h = StreamingHistogram("lat", reservoir_size=32, seed=11)
            for v in values:
                h.observe(float(v))
            return h.snapshot()

        assert build() == build()

    def test_empty_snapshot_is_all_none(self):
        snap = StreamingHistogram("lat").snapshot()
        assert snap["count"] == 0
        assert snap["mean"] is None
        assert snap["p99"] is None

    def test_reservoir_size_validated(self):
        with pytest.raises(ConfigurationError):
            StreamingHistogram("lat", reservoir_size=0)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_convenience_write_paths(self):
        reg = MetricsRegistry()
        reg.count("n", 2)
        reg.count("n")
        reg.set_gauge("g", 0.5)
        reg.observe("h", 1.0)
        snap = reg.snapshot()
        assert snap["counters"]["n"] == 3
        assert snap["gauges"]["g"] == pytest.approx(0.5)
        assert snap["histograms"]["h"]["count"] == 1

    def test_histogram_seed_independent_of_creation_order(self):
        """Each histogram's reservoir stream derives from its name, so
        registries that create the same histograms in different orders
        produce identical snapshots."""
        values = np.random.default_rng(1).random(400)
        reg_a = MetricsRegistry(seed=5, reservoir_size=16)
        reg_b = MetricsRegistry(seed=5, reservoir_size=16)
        reg_a.histogram("first")
        reg_a.histogram("second")
        reg_b.histogram("second")
        reg_b.histogram("first")
        for v in values:
            reg_a.observe("second", float(v))
            reg_b.observe("second", float(v))
        assert (reg_a.histogram("second").snapshot()
                == reg_b.histogram("second").snapshot())

    def test_snapshot_sorted_and_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.count("z.last")
        reg.count("a.first")
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a.first", "z.last"]
        json.dumps(snap)  # must not raise
