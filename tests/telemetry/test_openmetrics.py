"""OpenMetrics exposition: escaping, bucket shape, renderer ↔ JSON
identity, and the validating parser's rejections."""

import math

import pytest

from repro.errors import ArtifactError
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.openmetrics import (
    CONTENT_TYPE,
    OpenMetricsBuilder,
    escape_label_value,
    parse_openmetrics,
    render_registry,
    sanitize_metric_name,
)


class TestEscaping:
    def test_label_value_escapes(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_escaped_labels_round_trip_through_parser(self):
        builder = OpenMetricsBuilder()
        nasty = 'quo"te\\slash\nline'
        builder.gauge("g", 1.0, labels={"model": nasty})
        parsed = parse_openmetrics(builder.render())
        ((_, labels, _),) = parsed["samples"]
        assert labels["model"] == nasty

    def test_metric_name_sanitized(self):
        assert sanitize_metric_name("serve.latency_seconds") == \
            "serve_latency_seconds"
        assert sanitize_metric_name("9lives").startswith("_")


class TestBuilder:
    def test_counter_normalizes_total_suffix(self):
        builder = OpenMetricsBuilder()
        builder.counter("requests_total", 3)
        text = builder.render()
        assert "# TYPE requests counter" in text
        assert "requests_total 3.0" in text
        assert text.endswith("# EOF\n")

    def test_family_type_conflict_rejected(self):
        builder = OpenMetricsBuilder()
        builder.counter("x", 1)
        with pytest.raises(ArtifactError):
            builder.gauge("x", 1)

    def test_histogram_appends_inf_bucket(self):
        builder = OpenMetricsBuilder()
        builder.histogram("h", [(0.1, 2), (1.0, 5)], total=1.5, count=7)
        parsed = parse_openmetrics(builder.render())
        les = [labels["le"] for name, labels, _ in parsed["samples"]
               if name == "h_bucket"]
        assert les == ["0.1", "1.0", "+Inf"]


class TestRegistryRendering:
    def _registry(self):
        registry = MetricsRegistry(seed=0)
        registry.count("serve.requests", 5)
        registry.set_gauge("serve.queue_depth", 2)
        for value in (0.002, 0.004, 0.2):
            registry.observe("serve.latency_seconds", value)
        return registry

    def test_renders_valid_openmetrics(self):
        parsed = parse_openmetrics(render_registry(self._registry()))
        assert parsed["families"]["repro_serve_requests"] == "counter"
        assert parsed["families"]["repro_serve_queue_depth"] == "gauge"
        assert parsed["families"]["repro_serve_latency_seconds"] == \
            "histogram"

    def test_counter_values_match_json_snapshot(self):
        """The OpenMetrics text and the JSON snapshot expose identical
        counter values — two renderings of one registry."""
        registry = self._registry()
        snapshot = registry.snapshot()
        parsed = parse_openmetrics(render_registry(registry))
        by_name = {name: value for name, _, value in parsed["samples"]}
        for name, value in snapshot["counters"].items():
            assert by_name["repro_" + sanitize_metric_name(name)
                           + "_total"] == value

    def test_histogram_buckets_monotone_and_consistent(self):
        registry = self._registry()
        parsed = parse_openmetrics(render_registry(registry))
        buckets = [(float(labels["le"]) if labels["le"] != "+Inf"
                    else math.inf, value)
                   for name, labels, value in parsed["samples"]
                   if name == "repro_serve_latency_seconds_bucket"]
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)
        assert buckets[-1] == (math.inf, 3)

    def test_gauge_trend_family_present(self):
        registry = MetricsRegistry(seed=0)
        for depth in (1, 4, 2):
            registry.set_gauge("serve.queue_depth", depth)
        parsed = parse_openmetrics(render_registry(registry))
        stats = {labels["stat"]: value
                 for name, labels, value in parsed["samples"]
                 if name == "repro_serve_queue_depth_trend"}
        assert stats["min"] == pytest.approx(1.0)
        assert stats["max"] == pytest.approx(4.0)
        assert 1.0 < stats["mean"] < 4.0

    def test_content_type_is_openmetrics(self):
        assert CONTENT_TYPE.startswith("application/openmetrics-text")


class TestParserRejections:
    def test_missing_eof(self):
        with pytest.raises(ArtifactError, match="EOF"):
            parse_openmetrics("# TYPE x counter\nx_total 1\n")

    def test_sample_without_type(self):
        with pytest.raises(ArtifactError, match="no preceding"):
            parse_openmetrics("orphan 1\n# EOF\n")

    def test_counter_sample_must_end_total(self):
        with pytest.raises(ArtifactError, match="_total"):
            parse_openmetrics("# TYPE x counter\nx 1\n# EOF\n")

    def test_non_monotone_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="1.0"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1.0\nh_count 5\n# EOF\n"
        )
        with pytest.raises(ArtifactError, match="monotone"):
            parse_openmetrics(text)

    def test_inf_bucket_must_match_count(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1.0\nh_count 6\n# EOF\n"
        )
        with pytest.raises(ArtifactError, match="_count"):
            parse_openmetrics(text)

    def test_malformed_labels(self):
        with pytest.raises(ArtifactError):
            parse_openmetrics('# TYPE g gauge\ng{oops} 1\n# EOF\n')

    def test_duplicate_type_rejected(self):
        with pytest.raises(ArtifactError, match="duplicate"):
            parse_openmetrics(
                "# TYPE g gauge\n# TYPE g gauge\n# EOF\n"
            )
