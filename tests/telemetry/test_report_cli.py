"""CLI integration: ``--telemetry`` knob and ``repro report``.

The contract under test: enabling telemetry changes what lands in the
telemetry directory and on stderr — never stdout, never the persisted
experiment artifacts — and ``repro report`` renders a recorded run in
both text and json.
"""

import json
import os

import pytest

from repro.cli import build_parser, main
from repro.telemetry import RunManifest


class TestParser:
    def test_telemetry_flag_defaults(self):
        parser = build_parser()
        assert parser.parse_args(["table2"]).telemetry is None
        assert parser.parse_args(["table2", "--telemetry"]).telemetry == ".telemetry"
        assert parser.parse_args(
            ["table2", "--telemetry", "runs/x"]).telemetry == "runs/x"

    def test_every_subcommand_accepts_telemetry(self):
        parser = build_parser()
        for command in ("info", "fig1", "fig3", "fig5", "table1", "table2",
                        "fig6", "fig7", "faults", "scaling", "deploy",
                        "cache", "lint", "report"):
            args = parser.parse_args([command, "--telemetry", "t"])
            assert args.telemetry == "t"

    def test_report_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["report"])
        assert args.dir == ".telemetry"
        assert args.output_format == "text"
        args = parser.parse_args(["report", "runs/x", "--format", "json"])
        assert args.dir == "runs/x"
        assert args.output_format == "json"


class TestStdoutIdentity:
    def test_table2_stdout_identical_with_and_without_telemetry(
        self, tmp_path, capsys
    ):
        assert main(["table2"]) == 0
        baseline = capsys.readouterr()
        assert main(["table2", "--telemetry", str(tmp_path / "tel")]) == 0
        instrumented = capsys.readouterr()
        assert instrumented.out == baseline.out
        assert baseline.err == ""
        assert "[telemetry]" in instrumented.err

    def test_session_closed_after_run(self, tmp_path, capsys):
        from repro import telemetry

        main(["table2", "--telemetry", str(tmp_path / "tel")])
        capsys.readouterr()
        assert telemetry.active() is None


class TestFig7Report:
    @pytest.fixture(scope="class")
    def fig7_run(self, tmp_path_factory):
        """One fast fig7 run recorded to a telemetry directory."""
        root = tmp_path_factory.mktemp("fig7-telemetry")
        previous = os.environ.get("REPRO_CACHE")
        os.environ["REPRO_CACHE"] = str(root / "cache")
        try:
            tel_dir = str(root / "tel")
            code = main(["fig7", "--fast", "--telemetry", tel_dir])
        finally:
            if previous is None:
                del os.environ["REPRO_CACHE"]
            else:
                os.environ["REPRO_CACHE"] = previous
        assert code == 0
        return tel_dir

    def test_text_report_renders_manifest_spans_metrics(
        self, fig7_run, capsys
    ):
        assert main(["report", fig7_run]) == 0
        out = capsys.readouterr().out
        assert "Run manifest" in out
        assert "fig7" in out
        assert "cli.fig7" in out
        assert "fig7.sigma_column" in out
        assert "mvm.count" in out

    def test_json_report_validates_and_counts_mvms(self, fig7_run, capsys):
        assert main(["report", fig7_run, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert RunManifest.validate(doc["manifest"]) == []
        assert doc["manifest"]["command"] == "fig7"
        counters = doc["manifest"]["metrics"]["counters"]
        assert counters["mvm.count"] > 0
        assert counters["mvm.elements"] > counters["mvm.count"]
        assert any(name.startswith("store.") for name in counters)
        names = [s["name"] for s in doc["spans"]]
        assert names[0] == "cli.fig7"
        assert "fig7.network" in names
        assert names.count("fig7.sigma_column") == 2

    def test_manifest_fingerprint_excludes_execution_knobs(self, fig7_run):
        """The telemetry directory is not part of the run identity: two
        runs differing only in where they log fingerprint identically."""
        parser = build_parser()
        with open(os.path.join(fig7_run, "manifest.json")) as fh:
            manifest = json.load(fh)
        assert manifest["seed"] == 0

        def fingerprint(argv):
            from repro.store import spec_hash

            args = parser.parse_args(argv)
            config = {key: value for key, value in vars(args).items()
                      if key not in ("command", "telemetry")}
            return spec_hash(config)

        assert manifest["config_fingerprint"] == fingerprint(
            ["fig7", "--fast", "--telemetry", "elsewhere"])


class TestReportErrors:
    def test_missing_directory_exits_nonzero(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 1
        assert "report error" in capsys.readouterr().out

    def test_corrupt_manifest_exits_nonzero(self, tmp_path, capsys):
        directory = tmp_path / "tel"
        directory.mkdir()
        (directory / "manifest.json").write_text("{not json")
        assert main(["report", str(directory)]) == 1
        assert "report error" in capsys.readouterr().out
