"""CLI integration: ``--telemetry`` knob and ``repro report``.

The contract under test: enabling telemetry changes what lands in the
telemetry directory and on stderr — never stdout, never the persisted
experiment artifacts — and ``repro report`` renders a recorded run in
both text and json.
"""

import json
import os

import pytest

from repro.cli import build_parser, main
from repro.telemetry import RunManifest


class TestParser:
    def test_telemetry_flag_defaults(self):
        parser = build_parser()
        assert parser.parse_args(["table2"]).telemetry is None
        assert parser.parse_args(["table2", "--telemetry"]).telemetry == ".telemetry"
        assert parser.parse_args(
            ["table2", "--telemetry", "runs/x"]).telemetry == "runs/x"

    def test_every_subcommand_accepts_telemetry(self):
        parser = build_parser()
        for command in ("info", "fig1", "fig3", "fig5", "table1", "table2",
                        "fig6", "fig7", "faults", "scaling", "deploy",
                        "cache", "lint", "report"):
            args = parser.parse_args([command, "--telemetry", "t"])
            assert args.telemetry == "t"

    def test_report_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["report"])
        assert args.dir == ".telemetry"
        assert args.output_format == "text"
        args = parser.parse_args(["report", "runs/x", "--format", "json"])
        assert args.dir == "runs/x"
        assert args.output_format == "json"
        args = parser.parse_args(["report", "runs/x", "--format", "trace"])
        assert args.output_format == "trace"


class TestStdoutIdentity:
    def test_table2_stdout_identical_with_and_without_telemetry(
        self, tmp_path, capsys
    ):
        assert main(["table2"]) == 0
        baseline = capsys.readouterr()
        assert main(["table2", "--telemetry", str(tmp_path / "tel")]) == 0
        instrumented = capsys.readouterr()
        assert instrumented.out == baseline.out
        assert baseline.err == ""
        assert "[telemetry]" in instrumented.err

    def test_session_closed_after_run(self, tmp_path, capsys):
        from repro import telemetry

        main(["table2", "--telemetry", str(tmp_path / "tel")])
        capsys.readouterr()
        assert telemetry.active() is None


class TestFig7Report:
    @pytest.fixture(scope="class")
    def fig7_run(self, tmp_path_factory):
        """One fast fig7 run recorded to a telemetry directory."""
        root = tmp_path_factory.mktemp("fig7-telemetry")
        previous = os.environ.get("REPRO_CACHE")
        os.environ["REPRO_CACHE"] = str(root / "cache")
        try:
            tel_dir = str(root / "tel")
            code = main(["fig7", "--fast", "--telemetry", tel_dir])
        finally:
            if previous is None:
                del os.environ["REPRO_CACHE"]
            else:
                os.environ["REPRO_CACHE"] = previous
        assert code == 0
        return tel_dir

    def test_text_report_renders_manifest_spans_metrics(
        self, fig7_run, capsys
    ):
        assert main(["report", fig7_run]) == 0
        out = capsys.readouterr().out
        assert "Run manifest" in out
        assert "fig7" in out
        assert "cli.fig7" in out
        assert "fig7.sigma_column" in out
        assert "mvm.count" in out

    def test_json_report_validates_and_counts_mvms(self, fig7_run, capsys):
        assert main(["report", fig7_run, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert RunManifest.validate(doc["manifest"]) == []
        assert doc["manifest"]["command"] == "fig7"
        counters = doc["manifest"]["metrics"]["counters"]
        assert counters["mvm.count"] > 0
        assert counters["mvm.elements"] > counters["mvm.count"]
        assert any(name.startswith("store.") for name in counters)
        names = [s["name"] for s in doc["spans"]]
        assert names[0] == "cli.fig7"
        assert "fig7.network" in names
        assert names.count("fig7.sigma_column") == 2

    def test_manifest_fingerprint_excludes_execution_knobs(self, fig7_run):
        """The telemetry directory is not part of the run identity: two
        runs differing only in where they log fingerprint identically."""
        parser = build_parser()
        with open(os.path.join(fig7_run, "manifest.json")) as fh:
            manifest = json.load(fh)
        assert manifest["seed"] == 0

        def fingerprint(argv):
            from repro.store import spec_hash

            args = parser.parse_args(argv)
            config = {key: value for key, value in vars(args).items()
                      if key not in ("command", "telemetry")}
            return spec_hash(config)

        assert manifest["config_fingerprint"] == fingerprint(
            ["fig7", "--fast", "--telemetry", "elsewhere"])


class TestTraceReport:
    @pytest.fixture
    def traced_run(self, tmp_path):
        """A saved session with two stitched traces and an SLO record."""
        from repro.telemetry.clock import perf
        from repro.telemetry.session import TelemetrySession

        session = TelemetrySession(command="serve", seed=0)
        for _ in range(2):
            trace_id = session.new_trace_id()
            root = session.tracer.start_span(
                "serve.request", trace_id=trace_id
            )
            session.tracer.record_span(
                "serve.parse", perf(), perf(), parent=root,
                trace_id=trace_id,
            )
            session.tracer.end_span(root)
        session.tracer.record_span("serve.drain", perf(), perf())
        session.manifest.slo = {
            "admitted": 2,
            "admitted_p99_ms": 4.2,
            "deadline_budget_ms": 50.0,
            "within_budget": True,
        }
        directory = str(tmp_path / "tel")
        session.save(directory)
        return directory

    def test_trace_format_groups_by_trace_id(self, traced_run, capsys):
        assert main(["report", traced_run, "--format", "trace"]) == 0
        out = capsys.readouterr().out
        assert "2 trace(s)" in out
        assert out.count("trace ") == 2
        assert out.count("serve.request") == 2
        assert "(untraced) — 1 span(s)" in out
        assert "serve.drain" in out

    def test_trace_format_renders_slo_footer(self, traced_run, capsys):
        assert main(["report", traced_run, "--format", "trace"]) == 0
        out = capsys.readouterr().out
        assert "SLO: admitted 2 request(s), p99 4.2 ms" in out
        assert "within budget" in out

    def test_trace_format_without_slo(self, tmp_path, capsys):
        from repro.telemetry.session import TelemetrySession

        session = TelemetrySession(command="table2", seed=0)
        directory = str(tmp_path / "tel")
        session.save(directory)
        assert main(["report", directory, "--format", "trace"]) == 0
        out = capsys.readouterr().out
        assert "0 trace(s)" in out
        assert "SLO: no serving SLO recorded" in out


class TestReportErrors:
    def test_missing_directory_exits_nonzero(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 1
        assert "report error" in capsys.readouterr().out

    def test_corrupt_manifest_exits_nonzero(self, tmp_path, capsys):
        directory = tmp_path / "tel"
        directory.mkdir()
        (directory / "manifest.json").write_text("{not json")
        assert main(["report", str(directory)]) == 1
        assert "report error" in capsys.readouterr().out
