"""Session lifecycle, disabled-mode no-ops, persistence, byte-identity.

The load-bearing claims of the telemetry subsystem live here:

* disabled telemetry is a shared null object with near-zero call cost;
* the saved ``manifest.json`` / ``spans.jsonl`` round-trip through the
  artifact store's atomic-write path;
* telemetry is an execution knob — a fault campaign persists
  byte-identical experiment records with it on or off.
"""

import hashlib
import json
import os

import pytest

from repro import telemetry
from repro.telemetry import RunManifest
from repro.telemetry.clock import perf


@pytest.fixture(autouse=True)
def _no_leaked_session():
    """Every test here starts and ends without an active session."""
    telemetry.disable()
    yield
    telemetry.disable()


class TestLifecycle:
    def test_enable_disable_active(self):
        assert telemetry.active() is None
        session = telemetry.enable(command="t")
        assert telemetry.active() is session
        assert telemetry.disable() is session
        assert telemetry.active() is None

    def test_capture_restores_previous_session(self):
        outer = telemetry.enable(command="outer")
        with telemetry.capture(command="inner") as inner:
            assert telemetry.active() is inner
        assert telemetry.active() is outer

    def test_module_helpers_route_to_active_session(self):
        with telemetry.capture() as session:
            telemetry.count("c", 2)
            telemetry.set_gauge("g", 1.5)
            telemetry.observe("h", 0.25)
            with telemetry.span("s", k=1):
                pass
        snap = session.registry.snapshot()
        assert snap["counters"]["c"] == 2
        assert snap["gauges"]["g"] == pytest.approx(1.5)
        assert snap["histograms"]["h"]["count"] == 1
        assert [s.name for s in session.tracer.spans] == ["s"]

    def test_finalize_is_idempotent(self):
        session = telemetry.TelemetrySession(command="t")
        session.count("c")
        first = session.finalize()
        again = session.finalize()
        assert first is again
        assert first.metrics["counters"]["c"] == 1


class TestDisabledMode:
    def test_helpers_are_no_ops(self):
        assert telemetry.active() is None
        telemetry.count("x", 5)
        telemetry.observe("y", 1.0)
        telemetry.set_gauge("z", 2.0)
        with telemetry.span("nothing", attr=1):
            pass
        assert telemetry.active() is None

    def test_disabled_span_is_a_shared_null_object(self):
        # Zero allocation on the disabled path: every call hands back
        # the same stateless context manager.
        assert telemetry.span("a") is telemetry.span("b", k=1)

    def test_disabled_call_cost_is_near_zero(self):
        """The disabled helpers must stay cheap enough to leave in hot
        loops: generous bound of 5 us/call (real cost is ~0.1 us)."""
        calls = 100_000
        start = perf()
        for _ in range(calls):
            telemetry.count("hot.counter")
        elapsed = perf() - start
        assert elapsed / calls < 5e-6
        start = perf()
        for _ in range(calls):
            with telemetry.span("hot.span"):
                pass
        elapsed = perf() - start
        assert elapsed / calls < 5e-6


class TestPersistence:
    def test_save_round_trips_through_atomic_store_path(self, tmp_path):
        from repro.telemetry.report import load_run

        directory = str(tmp_path / "tel")
        with telemetry.capture(command="unit", argv=["unit"],
                               config={"k": 1}, seed=9) as session:
            with telemetry.span("outer"):
                telemetry.count("n", 3)
        paths = session.save(directory)
        assert os.path.isfile(paths["manifest"])
        assert os.path.isfile(paths["spans"])
        # No torn temp files left behind by the atomic writes.
        assert not [f for f in os.listdir(directory) if f.endswith(".tmp")]
        manifest, spans = load_run(directory)
        assert RunManifest.validate(manifest) == []
        assert manifest["command"] == "unit"
        assert manifest["seed"] == 9
        assert manifest["metrics"]["counters"]["n"] == 3
        assert [s["name"] for s in spans] == ["outer"]

    def test_manifest_validate_flags_problems(self):
        assert RunManifest.validate("nope") == ["manifest is not a JSON object"]
        doc = RunManifest.begin("t").finish().to_dict()
        assert RunManifest.validate(doc) == []
        del doc["seed"]
        assert RunManifest.validate(doc) == ["missing field: seed"]
        doc = RunManifest.begin("t").finish().to_dict()
        doc["manifest_version"] = 99
        assert "unsupported manifest_version" in RunManifest.validate(doc)[0]

    def test_manifest_fingerprints_config_like_the_store(self):
        from repro.store import spec_hash

        manifest = RunManifest.begin("t", config={"a": 1, "b": [2, 3]})
        assert manifest.config_fingerprint == spec_hash({"a": 1, "b": [2, 3]})


class TestStoreStatsBridge:
    def test_stats_deltas_forward_to_session(self):
        from repro.store import StoreStats

        stats = StoreStats()
        with telemetry.capture() as session:
            stats.hits += 1
            stats.hits += 1
            stats.misses += 1
            stats.hits -= 1  # decode-failure retraction
        assert stats.hits == 1
        assert stats.misses == 1
        counters = session.registry.snapshot()["counters"]
        assert counters["store.hits"] == 1
        assert counters["store.misses"] == 1

    def test_reset_does_not_forward(self):
        from repro.store import StoreStats

        stats = StoreStats()
        stats.writes += 4
        with telemetry.capture() as session:
            stats.reset()
        assert stats.writes == 0
        assert "store.writes" not in session.registry.snapshot()["counters"]

    def test_attribute_view_unchanged(self):
        from repro.store import StoreStats

        stats = StoreStats()
        stats.hits += 2
        stats.memory_hits += 1
        assert stats.as_dict() == {
            "hits": 2, "memory_hits": 1, "misses": 0,
            "stale": 0, "corruptions": 0, "writes": 0,
        }
        assert stats.describe() == (
            "hits=2 (memory=1) misses=0 (stale=0) corruptions=0 writes=0"
        )


class TestExecutionKnob:
    """Telemetry on/off must not change persisted experiment bytes."""

    def test_campaign_artifacts_identical_with_and_without_telemetry(
        self, tmp_path, monkeypatch
    ):
        from repro.faults import CampaignSpec, FaultCampaign
        from repro.store import ArtifactStore

        spec = CampaignSpec(
            network="mlp-1",
            rates=(0.0, 0.05),
            sigmas=(0.0,),
            ages=(0.0,),
            trials=1,
            seed=0,
            n_samples=300,
            eval_samples=50,
            backend="ideal",
        )

        def run(label, with_telemetry):
            monkeypatch.setenv("REPRO_CACHE", str(tmp_path / f"models-{label}"))
            store = ArtifactStore(str(tmp_path / label / "records"))
            campaign = FaultCampaign(spec, store=store)
            if with_telemetry:
                with telemetry.capture(command="faults", seed=spec.seed):
                    campaign.run()
            else:
                campaign.run()
            digests = {}
            for point in spec.points():
                key = campaign.trial_key(*point)
                with open(campaign.store.path_for(key), "rb") as fh:
                    digests[key] = hashlib.sha256(fh.read()).hexdigest()
            return digests

        assert run("off", False) == run("on", True)

    def test_telemetry_records_campaign_activity_meanwhile(
        self, tmp_path, monkeypatch
    ):
        from repro.faults import CampaignSpec, FaultCampaign
        from repro.store import ArtifactStore

        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "models"))
        spec = CampaignSpec(
            network="mlp-1", rates=(0.0, 0.05), sigmas=(0.0,), ages=(0.0,),
            trials=1, seed=0, n_samples=300, eval_samples=50,
            backend="ideal",
        )
        store = ArtifactStore(str(tmp_path / "records"))
        with telemetry.capture(command="faults", seed=spec.seed) as session:
            result = FaultCampaign(spec, store=store).run()
        assert result.computed == 2
        counters = session.registry.snapshot()["counters"]
        assert counters["campaign.trials.started"] == 2
        assert counters["campaign.trials.computed"] == 2
        names = [s.name for s in session.tracer.spans]
        assert "campaign.run" in names
        assert names.count("campaign.trial_group") == 2
        # Remap ran for the faulted trial: its instruments must exist.
        assert "remap.flagged" in counters
        gauges = session.registry.snapshot()["gauges"]
        assert "remap.probe_deviation" in gauges

    def test_cached_rerun_counts_store_hits(self, tmp_path, monkeypatch):
        from repro.faults import CampaignSpec, FaultCampaign
        from repro.store import ArtifactStore

        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "models"))
        spec = CampaignSpec(
            network="mlp-1", rates=(0.05,), sigmas=(0.0,), ages=(0.0,),
            trials=1, seed=0, n_samples=300, eval_samples=50,
            backend="ideal",
        )
        store = ArtifactStore(str(tmp_path / "records"))
        FaultCampaign(spec, store=store).run()
        with telemetry.capture(command="faults") as session:
            result = FaultCampaign(spec, store=store).run()
        assert result.cached == 1
        counters = session.registry.snapshot()["counters"]
        assert counters["campaign.trials.cached"] == 1
        assert counters["store.hits"] >= 1

    def test_fingerprints_unchanged_by_telemetry(self):
        from repro.faults import CampaignSpec

        spec = CampaignSpec()
        off = spec.fingerprint()
        with telemetry.capture():
            on = spec.fingerprint()
        assert off == on
