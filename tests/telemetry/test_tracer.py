"""Tracer: span nesting, ordering, external intervals, JSONL."""

import json

import pytest

from repro.errors import ExecutionError
from repro.telemetry import Tracer


class TestNesting:
    def test_spans_nest_and_order_by_creation(self):
        tracer = Tracer()
        with tracer.span("outer", label="a"):
            with tracer.span("inner.first"):
                pass
            with tracer.span("inner.second"):
                with tracer.span("leaf"):
                    pass
        names = [s.name for s in tracer.spans]
        assert names == ["outer", "inner.first", "inner.second", "leaf"]
        outer, first, second, leaf = tracer.spans
        assert outer.parent_id is None and outer.depth == 0
        assert first.parent_id == outer.span_id and first.depth == 1
        assert second.parent_id == outer.span_id and second.depth == 1
        assert leaf.parent_id == second.span_id and leaf.depth == 2

    def test_siblings_after_pop_reparent_correctly(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.spans
        assert a.parent_id is None and b.parent_id is None

    def test_durations_filled_on_close(self):
        tracer = Tracer()
        with tracer.span("timed"):
            sum(range(1000))
        span = tracer.spans[0]
        assert span.duration_s is not None and span.duration_s >= 0
        assert span.cpu_s is not None and span.cpu_s >= 0
        assert span.status == "ok"

    def test_exception_marks_span_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ExecutionError):
            with tracer.span("fails"):
                raise ExecutionError("boom")
        span = tracer.spans[0]
        assert span.status == "error"
        assert span.duration_s is not None  # closed despite the raise


class TestRecordSpan:
    def test_parented_to_innermost_open_span(self):
        from repro.telemetry.clock import perf

        tracer = Tracer()
        with tracer.span("parent"):
            start = perf()
            end = perf()
            recorded = tracer.record_span("chunk", start, end, index=3)
        assert recorded.parent_id == tracer.spans[0].span_id
        assert recorded.depth == 1
        assert recorded.attrs == {"index": 3}
        assert recorded.duration_s == pytest.approx(end - start)
        assert recorded.cpu_s is None  # CPU burned in another process

    def test_root_when_no_span_open(self):
        from repro.telemetry.clock import perf

        tracer = Tracer()
        t = perf()
        recorded = tracer.record_span("chunk", t, t)
        assert recorded.parent_id is None and recorded.depth == 0


class TestSerialisation:
    def test_jsonl_round_trips(self):
        tracer = Tracer()
        with tracer.span("outer", sigma=0.1):
            with tracer.span("inner"):
                pass
        payload = tracer.to_jsonl()
        assert payload.endswith(b"\n")
        docs = [json.loads(line) for line in payload.splitlines()]
        assert docs == tracer.to_records()
        assert docs[0]["name"] == "outer"
        assert docs[0]["attrs"] == {"sigma": 0.1}
        assert docs[1]["parent_id"] == docs[0]["span_id"]

    def test_empty_tracer_serialises_empty(self):
        assert Tracer().to_jsonl() == b""
        assert Tracer().render_tree() == "(no spans recorded)"

    def test_render_tree_indents_by_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", k=1):
                pass
        lines = tracer.render_tree().splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")
        assert "k=1" in lines[1]
