"""CircuitParameters operating points."""

import dataclasses
import math

import pytest

from repro.config import CircuitParameters, default_parameters
from repro.errors import ConfigurationError


class TestPaperPoint:
    def test_published_values(self, paper_params):
        p = paper_params
        assert p.v_s == pytest.approx(1.0)
        assert p.r_gd == pytest.approx(100e3)
        assert p.c_gd == pytest.approx(100e-15)
        assert p.c_cog == pytest.approx(100e-15)
        assert p.slice_length == pytest.approx(100e-9)
        assert p.dt == pytest.approx(1e-9)
        assert p.rows == p.cols == 32
        assert p.r_lrs == pytest.approx(10e3)
        assert p.r_hrs == pytest.approx(1e6)

    def test_tau_gd(self, paper_params):
        assert paper_params.tau_gd == pytest.approx(10e-9)

    def test_mac_gain(self, paper_params):
        # dt/C_cog = 1 ns / 100 fF = 10 kOhm
        assert paper_params.mac_gain == pytest.approx(1e4)

    def test_mvm_latency_two_slices(self, paper_params):
        assert paper_params.mvm_latency == pytest.approx(200e-9)

    def test_paper_point_saturates_at_linear_limit(self, paper_params):
        # The DESIGN.md consistency note: ~16 time constants at 1.6 mS.
        assert paper_params.saturation_depth(1.6e-3) == pytest.approx(16.0)
        assert not paper_params.is_linear_regime(1.6e-3)


class TestCalibratedPoint:
    def test_column_linearity(self, calibrated_params):
        p = calibrated_params
        assert p.saturation_depth(p.g_column_linear_limit) == pytest.approx(0.5)
        assert p.is_linear_regime(p.g_column_linear_limit)

    def test_ramp_linearity(self, calibrated_params):
        p = calibrated_params
        assert p.t_in_max / p.tau_gd == pytest.approx(0.1)

    def test_expected_c_cog(self, calibrated_params):
        assert calibrated_params.c_cog == pytest.approx(3.2e-12)

    def test_overrides_forwarded(self):
        p = CircuitParameters.calibrated(rows=16, cols=8)
        assert (p.rows, p.cols) == (16, 8)

    def test_ratio_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitParameters.calibrated(linearity_ratio=0.0)
        with pytest.raises(ConfigurationError):
            CircuitParameters.calibrated(ramp_ratio=-1.0)

    def test_default_parameters_is_calibrated(self):
        assert default_parameters() == CircuitParameters.calibrated()


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("v_s", 0.0),
            ("r_gd", -1.0),
            ("c_gd", 0.0),
            ("c_cog", -1e-15),
            ("slice_length", 0.0),
            ("spike_width", 0.0),
        ],
    )
    def test_rejects_nonpositive(self, field, value):
        with pytest.raises(ConfigurationError):
            CircuitParameters(**{field: value})

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ConfigurationError):
            CircuitParameters(rows=0)

    def test_rejects_lrs_above_hrs(self):
        with pytest.raises(ConfigurationError):
            CircuitParameters(r_lrs=2e6, r_hrs=1e6)

    def test_rejects_dt_longer_than_slice(self):
        with pytest.raises(ConfigurationError):
            CircuitParameters(dt=200e-9)

    def test_rejects_bad_input_window(self):
        with pytest.raises(ConfigurationError):
            CircuitParameters(t_in_min=90e-9, t_in_max=80e-9)
        with pytest.raises(ConfigurationError):
            CircuitParameters(t_in_max=200e-9)

    def test_frozen(self, paper_params):
        with pytest.raises(dataclasses.FrozenInstanceError):
            paper_params.v_s = 2.0


class TestDerived:
    def test_conductance_states(self, paper_params):
        assert paper_params.g_lrs == pytest.approx(1e-4)
        assert paper_params.g_hrs == pytest.approx(1e-6)

    def test_max_column_conductance(self, paper_params):
        assert paper_params.max_column_conductance == pytest.approx(32e-4)

    def test_column_time_constant(self, paper_params):
        tau = paper_params.column_time_constant(1e-3)
        assert tau == pytest.approx(100e-15 / 1e-3)

    def test_column_time_constant_rejects_zero(self, paper_params):
        with pytest.raises(ConfigurationError):
            paper_params.column_time_constant(0.0)

    def test_ramp_voltage_exact(self, paper_params):
        p = paper_params
        t = 40e-9
        expected = p.v_s * (1 - math.exp(-t / p.tau_gd))
        assert p.ramp_voltage(t) == pytest.approx(expected)

    def test_ramp_voltage_rejects_negative_time(self, paper_params):
        with pytest.raises(ConfigurationError):
            paper_params.ramp_voltage(-1e-9)

    def test_describe_mentions_key_values(self, paper_params):
        text = paper_params.describe()
        assert "100 fF" in text
        assert "32 x 32" in text
