"""Unit helpers."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.units import (
    ATTO,
    FEMTO,
    GIGA,
    KILO,
    MEGA,
    MICRO,
    MILLI,
    NANO,
    PICO,
    TERA,
    conductance,
    db,
    from_db,
    parallel,
    resistance,
    si_format,
)


class TestPrefixes:
    def test_prefix_values(self):
        expected = [
            (ATTO, 1e-18), (FEMTO, 1e-15), (PICO, 1e-12), (NANO, 1e-9),
            (MICRO, 1e-6), (MILLI, 1e-3), (KILO, 1e3), (MEGA, 1e6),
            (GIGA, 1e9), (TERA, 1e12),
        ]
        for constant, value in expected:
            # SI prefixes must be bit-exact powers of ten, not merely close.
            assert math.isclose(constant, value, rel_tol=0.0, abs_tol=0.0)

    def test_datasheet_style_composition(self):
        assert 100 * FEMTO == pytest.approx(1e-13)
        assert 100 * NANO == pytest.approx(1e-7)


class TestSiFormat:
    def test_basic(self):
        assert si_format(1e-13, "F") == "100 fF"
        assert si_format(2.5e-3, "S") == "2.5 mS"
        assert si_format(1e9, "Hz") == "1 GHz"

    def test_zero(self):
        assert si_format(0.0, "W") == "0 W"
        assert si_format(-0.0, "W") == "-0 W"
        assert si_format(0.0) == "0"

    def test_negative(self):
        assert si_format(-3e-9, "s") == "-3 ns"
        assert si_format(-2.5e-3, "S") == "-2.5 mS"
        assert si_format(-1500.0, "W") == "-1.5 kW"

    def test_no_unit(self):
        assert si_format(1500.0) == "1.5 k"

    def test_non_finite(self):
        assert "inf" in si_format(float("inf"), "s")
        assert "-inf" in si_format(float("-inf"), "s")
        assert "nan" in si_format(float("nan"), "s")

    def test_sub_atto_falls_back_to_scientific(self):
        # Below the smallest prefix no engineering form exists; the
        # formatter must not emit misleading fractions of atto.
        assert si_format(5e-19, "F") == "5e-19 F"
        assert si_format(1e-21, "F") == "1e-21 F"
        assert si_format(-5e-19, "F") == "-5e-19 F"

    def test_supra_tera_falls_back_to_scientific(self):
        assert si_format(1e15, "Hz") == "1e+15 Hz"
        assert si_format(2.5e16, "Hz") == "2.5e+16 Hz"
        assert si_format(-1e15, "Hz") == "-1e+15 Hz"

    def test_rounding_promotes_across_prefix_boundary(self):
        # 999.96 ns rounds to 1000 at 4 significant digits -> promote
        # to the next prefix instead of rendering "1000 ns".
        assert si_format(999.96e-9, "s", digits=4) == "1 us"
        assert si_format(-999.96e-9, "s", digits=4) == "-1 us"
        # ... but a value that does not round across stays put.
        assert si_format(999.4e-9, "s", digits=4) == "999.4 ns"
        assert si_format(999.96e9, "Hz", digits=4) == "1 THz"

    def test_rounding_at_tera_falls_back_to_scientific(self):
        # There is no prefix above tera to promote into.
        assert si_format(999.96e12, "Hz", digits=4) == "1e+15 Hz"

    def test_digits_control_significant_figures(self):
        assert si_format(123.456e-9, "s", digits=4) == "123.5 ns"
        assert si_format(123.456e-9, "s", digits=2) == "120 ns"


class TestDecibels:
    def test_round_trip(self):
        assert from_db(db(100.0)) == pytest.approx(100.0)

    def test_known_values(self):
        assert db(10.0) == pytest.approx(10.0)
        assert db(2.0) == pytest.approx(3.0103, rel=1e-4)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            db(0.0)
        with pytest.raises(ConfigurationError):
            db(-1.0)

    def test_rejection_still_catchable_as_valueerror(self):
        # Back-compat: ConfigurationError derives from ValueError.
        with pytest.raises(ValueError):
            db(0.0)


class TestParallel:
    def test_two_equal(self):
        assert parallel(10e3, 10e3) == pytest.approx(5e3)

    def test_single(self):
        assert parallel(42.0) == pytest.approx(42.0)

    def test_dominated_by_smallest(self):
        assert parallel(1.0, 1e9) == pytest.approx(1.0, rel=1e-6)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            parallel(10.0, -5.0)
        with pytest.raises(ConfigurationError):
            parallel()


class TestConductanceResistance:
    def test_inverse_pair(self):
        assert conductance(50e3) == pytest.approx(2e-5)
        assert resistance(2e-5) == pytest.approx(50e3)
        assert resistance(conductance(123.0)) == pytest.approx(123.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            conductance(0.0)
        with pytest.raises(ConfigurationError):
            resistance(-1.0)
