"""Unit helpers."""

import math

import pytest

from repro.units import (
    FEMTO,
    GIGA,
    KILO,
    MEGA,
    MICRO,
    MILLI,
    NANO,
    PICO,
    conductance,
    db,
    from_db,
    parallel,
    resistance,
    si_format,
)


class TestPrefixes:
    def test_prefix_values(self):
        assert FEMTO == 1e-15
        assert PICO == 1e-12
        assert NANO == 1e-9
        assert MICRO == 1e-6
        assert MILLI == 1e-3
        assert KILO == 1e3
        assert MEGA == 1e6
        assert GIGA == 1e9

    def test_datasheet_style_composition(self):
        assert 100 * FEMTO == pytest.approx(1e-13)
        assert 100 * NANO == pytest.approx(1e-7)


class TestSiFormat:
    def test_basic(self):
        assert si_format(1e-13, "F") == "100 fF"
        assert si_format(2.5e-3, "S") == "2.5 mS"
        assert si_format(1e9, "Hz") == "1 GHz"

    def test_zero(self):
        assert si_format(0.0, "W") == "0 W"

    def test_negative(self):
        assert si_format(-3e-9, "s") == "-3 ns"

    def test_no_unit(self):
        assert si_format(1500.0) == "1.5 k"

    def test_non_finite(self):
        assert "inf" in si_format(float("inf"), "s")

    def test_tiny_below_prefix_table(self):
        text = si_format(5e-19, "F")
        assert "a" in text  # atto


class TestDecibels:
    def test_round_trip(self):
        assert from_db(db(100.0)) == pytest.approx(100.0)

    def test_known_values(self):
        assert db(10.0) == pytest.approx(10.0)
        assert db(2.0) == pytest.approx(3.0103, rel=1e-4)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            db(0.0)
        with pytest.raises(ValueError):
            db(-1.0)


class TestParallel:
    def test_two_equal(self):
        assert parallel(10e3, 10e3) == pytest.approx(5e3)

    def test_single(self):
        assert parallel(42.0) == pytest.approx(42.0)

    def test_dominated_by_smallest(self):
        assert parallel(1.0, 1e9) == pytest.approx(1.0, rel=1e-6)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            parallel(10.0, -5.0)
        with pytest.raises(ValueError):
            parallel()


class TestConductanceResistance:
    def test_inverse_pair(self):
        assert conductance(50e3) == pytest.approx(2e-5)
        assert resistance(2e-5) == pytest.approx(50e3)
        assert resistance(conductance(123.0)) == pytest.approx(123.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            conductance(0.0)
        with pytest.raises(ValueError):
            resistance(-1.0)
